//! Linear expressions over parameter atoms.
//!
//! A [`LinExpr`] is an integer-valued affine combination of [`Term`]s: a
//! constant plus `coefficient * term` products. Terms are either parameter
//! variables or *applications* — opaque function symbols applied to linear
//! expressions. Applications model everything the linear fragment cannot
//! express directly: output parameters of components (`Max_O(A, B)`),
//! non-linear products, integer division and remainder, and the `log2` /
//! `exp2` built-ins.

use lilac_util::intern::Symbol;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Well-known interpreted function symbols used for [`Term::App`] atoms.
pub mod funcs {
    /// Non-linear multiplication: `mul(a, b) = a * b`.
    pub const MUL: &str = "$mul";
    /// Integer division: `div(a, b) = a / b` (truncating).
    pub const DIV: &str = "$div";
    /// Remainder: `mod(a, b) = a % b`.
    pub const MOD: &str = "$mod";
    /// Ceiling base-2 logarithm.
    pub const LOG2: &str = "$log2";
    /// Power of two.
    pub const EXP2: &str = "$exp2";
}

/// An atom of a linear expression.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A parameter variable, identified by its (fully qualified) name.
    Var(Symbol),
    /// An application of a function symbol to argument expressions.
    ///
    /// Output parameters are encoded this way (§4.2): `Max[#A,#B]::#O`
    /// becomes `App { func: "Max::#O", args: [A, B] }`. The interpreted
    /// operators in [`funcs`] use the same representation.
    App {
        /// Function symbol.
        func: Symbol,
        /// Argument expressions.
        args: Vec<LinExpr>,
    },
}

impl Term {
    /// Creates a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Creates an application term.
    pub fn app(func: &str, args: Vec<LinExpr>) -> Term {
        Term::App { func: Symbol::intern(func), args }
    }

    /// Returns true if this term is an application of `func`.
    pub fn is_app_of(&self, func: &str) -> bool {
        matches!(self, Term::App { func: f, .. } if f.as_str() == func)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::App { func, args } => {
                let args = args
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(f, "{func}({args})")
            }
        }
    }
}

/// An affine expression `constant + Σ coeff·term` with integer coefficients.
///
/// `LinExpr` is the lingua franca of the solver: availability interval
/// bounds, schedules, delays, and constraint sides are all lowered to this
/// form. Construction automatically merges like terms and drops zero
/// coefficients, so two expressions are structurally equal exactly when they
/// are syntactically identical affine forms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LinExpr {
    /// Constant offset.
    constant: i64,
    /// Map from term to (non-zero) coefficient.
    terms: BTreeMap<Term, i64>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(value: i64) -> LinExpr {
        LinExpr { constant: value, terms: BTreeMap::new() }
    }

    /// A single variable with coefficient one.
    pub fn var(name: &str) -> LinExpr {
        LinExpr::from_term(Term::var(name), 1)
    }

    /// A single term with the given coefficient.
    pub fn from_term(term: Term, coeff: i64) -> LinExpr {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(term, coeff);
        }
        LinExpr { constant: 0, terms }
    }

    /// The constant offset.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Iterates over `(term, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Term, i64)> {
        self.terms.iter().map(|(t, &c)| (t, c))
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Returns the constant value if the expression has no terms.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Returns `Some(term)` if the expression is exactly `1·term + 0`.
    pub fn as_single_term(&self) -> Option<&Term> {
        if self.constant == 0 && self.terms.len() == 1 {
            let (t, &c) = self.terms.iter().next().unwrap();
            if c == 1 {
                return Some(t);
            }
        }
        None
    }

    /// Adds `coeff * term` to the expression.
    pub fn add_term(&mut self, term: Term, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(term).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            // Remove cancelled terms to keep structural equality meaningful.
            let key = self
                .terms
                .iter()
                .find(|(_, &c)| c == 0)
                .map(|(t, _)| t.clone())
                .expect("zero entry exists");
            self.terms.remove(&key);
        }
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, value: i64) {
        self.constant += value;
    }

    /// Multiplies the whole expression by a scalar.
    pub fn scaled(&self, factor: i64) -> LinExpr {
        if factor == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            constant: self.constant * factor,
            terms: self.terms.iter().map(|(t, c)| (t.clone(), c * factor)).collect(),
        }
    }

    /// Multiplies two expressions, staying linear when either side is a
    /// constant and falling back to an opaque [`funcs::MUL`] application
    /// otherwise.
    pub fn multiply(&self, other: &LinExpr) -> LinExpr {
        if let Some(c) = self.as_constant() {
            return other.scaled(c);
        }
        if let Some(c) = other.as_constant() {
            return self.scaled(c);
        }
        LinExpr::from_term(Term::app(funcs::MUL, vec![self.clone(), other.clone()]), 1)
    }

    /// Integer division, constant-folded when both sides are constants and
    /// the divisor is non-zero; otherwise an opaque [`funcs::DIV`] atom.
    pub fn divide(&self, other: &LinExpr) -> LinExpr {
        if let (Some(a), Some(b)) = (self.as_constant(), other.as_constant()) {
            if b != 0 {
                return LinExpr::constant(a / b);
            }
        }
        LinExpr::from_term(Term::app(funcs::DIV, vec![self.clone(), other.clone()]), 1)
    }

    /// Remainder, constant-folded when possible; otherwise an opaque
    /// [`funcs::MOD`] atom.
    pub fn modulo(&self, other: &LinExpr) -> LinExpr {
        if let (Some(a), Some(b)) = (self.as_constant(), other.as_constant()) {
            if b != 0 {
                return LinExpr::constant(a % b);
            }
        }
        LinExpr::from_term(Term::app(funcs::MOD, vec![self.clone(), other.clone()]), 1)
    }

    /// Ceiling base-2 logarithm, constant-folded for positive constants.
    pub fn log2(&self) -> LinExpr {
        if let Some(a) = self.as_constant() {
            if a > 0 {
                return LinExpr::constant(ceil_log2(a as u64) as i64);
            }
        }
        LinExpr::from_term(Term::app(funcs::LOG2, vec![self.clone()]), 1)
    }

    /// Power of two, constant-folded for small non-negative constants.
    pub fn exp2(&self) -> LinExpr {
        if let Some(a) = self.as_constant() {
            if (0..=62).contains(&a) {
                return LinExpr::constant(1i64 << a);
            }
        }
        LinExpr::from_term(Term::app(funcs::EXP2, vec![self.clone()]), 1)
    }

    /// Visits every term appearing in the expression by reference, including
    /// terms nested inside application arguments — the allocation-free
    /// counterpart of [`LinExpr::collect_terms`].
    pub fn for_each_term<'a>(&'a self, f: &mut impl FnMut(&'a Term)) {
        for (t, _) in self.terms.iter() {
            f(t);
            if let Term::App { args, .. } = t {
                for a in args {
                    a.for_each_term(f);
                }
            }
        }
    }

    /// Collects every term appearing in the expression, including terms
    /// nested inside application arguments.
    pub fn collect_terms(&self, out: &mut Vec<Term>) {
        for (t, _) in self.terms.iter() {
            out.push(t.clone());
            if let Term::App { args, .. } = t {
                for a in args {
                    a.collect_terms(out);
                }
            }
        }
    }

    /// Substitutes `replacement` for every occurrence of `target` (including
    /// occurrences nested in application arguments) and returns the result.
    pub fn substitute(&self, target: &Term, replacement: &LinExpr) -> LinExpr {
        let mut out = LinExpr::constant(self.constant);
        for (t, &c) in self.terms.iter() {
            if t == target {
                out = out + replacement.scaled(c);
                continue;
            }
            let new_term = match t {
                Term::Var(_) => t.clone(),
                Term::App { func, args } => Term::App {
                    func: *func,
                    args: args.iter().map(|a| a.substitute(target, replacement)).collect(),
                },
            };
            if &new_term == target {
                out = out + replacement.scaled(c);
            } else {
                out.add_term(new_term, c);
            }
        }
        out
    }
}

fn ceil_log2(v: u64) -> u32 {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros()
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        out.constant += rhs.constant;
        for (t, c) in rhs.terms {
            out.add_term(t, c);
        }
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.neg()
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: i64) -> LinExpr {
        self.scaled(rhs)
    }
}

impl From<i64> for LinExpr {
    fn from(v: i64) -> Self {
        LinExpr::constant(v)
    }
}

impl From<u64> for LinExpr {
    fn from(v: u64) -> Self {
        LinExpr::constant(v as i64)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (t, c) in self.terms.iter() {
            if first {
                match *c {
                    1 => write!(f, "{t}")?,
                    -1 => write!(f, "-{t}")?,
                    c => write!(f, "{c}*{t}")?,
                }
                first = false;
            } else if *c < 0 {
                if *c == -1 {
                    write!(f, " - {t}")?;
                } else {
                    write!(f, " - {}*{t}", -c)?;
                }
            } else if *c == 1 {
                write!(f, " + {t}")?;
            } else {
                write!(f, " + {c}*{t}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_normalizes() {
        let a = LinExpr::var("A");
        let b = LinExpr::var("B");
        let e = a.clone() + b.clone() + LinExpr::constant(3) - a.clone();
        assert_eq!(e, b.clone() + LinExpr::constant(3));
        let z = a.clone() - a.clone();
        assert_eq!(z, LinExpr::zero());
        assert_eq!(z.as_constant(), Some(0));
    }

    #[test]
    fn scaling_and_single_term() {
        let a = LinExpr::var("A");
        assert_eq!(a.scaled(0), LinExpr::zero());
        assert!(a.as_single_term().is_some());
        assert!((a.clone() * 2).as_single_term().is_none());
        assert!((a + LinExpr::constant(1)).as_single_term().is_none());
    }

    #[test]
    fn multiplication_linear_and_opaque() {
        let a = LinExpr::var("A");
        let two = LinExpr::constant(2);
        assert_eq!(a.multiply(&two), a.scaled(2));
        assert_eq!(two.multiply(&a), a.scaled(2));
        let b = LinExpr::var("B");
        let nl = a.multiply(&b);
        assert_eq!(nl.term_count(), 1);
        assert!(nl.terms().next().unwrap().0.is_app_of(funcs::MUL));
    }

    #[test]
    fn constant_folding_div_mod_log() {
        assert_eq!(LinExpr::constant(17).divide(&LinExpr::constant(4)).as_constant(), Some(4));
        assert_eq!(LinExpr::constant(17).modulo(&LinExpr::constant(4)).as_constant(), Some(1));
        assert_eq!(LinExpr::constant(16).log2().as_constant(), Some(4));
        assert_eq!(LinExpr::constant(17).log2().as_constant(), Some(5));
        assert_eq!(LinExpr::constant(1).log2().as_constant(), Some(0));
        assert_eq!(LinExpr::constant(4).exp2().as_constant(), Some(16));
        // Division by zero stays symbolic rather than panicking.
        assert!(LinExpr::constant(1).divide(&LinExpr::constant(0)).as_constant().is_none());
    }

    #[test]
    fn substitution() {
        let l = Term::var("L");
        let e = LinExpr::from_term(l.clone(), 2) + LinExpr::var("G");
        let sub = e.substitute(&l, &LinExpr::constant(4));
        assert_eq!(sub, LinExpr::var("G") + LinExpr::constant(8));

        // Substitution reaches inside application arguments.
        let app = Term::app("Max::#O", vec![LinExpr::var("L"), LinExpr::var("M")]);
        let e2 = LinExpr::from_term(app, 1);
        let sub2 = e2.substitute(&Term::var("L"), &LinExpr::constant(3));
        let t = sub2.terms().next().unwrap().0.clone();
        match t {
            Term::App { args, .. } => assert_eq!(args[0].as_constant(), Some(3)),
            _ => panic!("expected app"),
        }
    }

    #[test]
    fn display_formats() {
        let e = LinExpr::var("A") - LinExpr::var("B").scaled(2) + LinExpr::constant(1);
        assert_eq!(e.to_string(), "A - 2*B + 1");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!(LinExpr::constant(-3).to_string(), "-3");
        let app = LinExpr::from_term(Term::app("Add::#L", vec![LinExpr::var("W")]), 1);
        assert_eq!(app.to_string(), "Add::#L(W)");
    }

    #[test]
    fn collect_terms_recurses() {
        let inner = LinExpr::var("A") + LinExpr::var("B");
        let app = LinExpr::from_term(Term::app("F", vec![inner]), 1);
        let mut ts = Vec::new();
        app.collect_terms(&mut ts);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }
}
