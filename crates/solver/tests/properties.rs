//! Property-style tests for the solver, driven by a deterministic PRNG
//! (`lilac_util::rng`): whatever the engine *proves* must hold on random
//! concrete assignments, models it returns must actually satisfy / refute
//! what they claim to, and — the A/B contract behind the perf work — the
//! sliced + cached pipeline must agree with a fresh naive solver on every
//! random query.

use lilac_solver::{LinExpr, Model, Outcome, Pred, Solver, SolverConfig, Term};
use lilac_util::rng::Rng;

/// A small random affine expression over three variables.
fn arb_expr(rng: &mut Rng) -> LinExpr {
    LinExpr::var("X").scaled(rng.range_i64(-6, 6))
        + LinExpr::var("Y").scaled(rng.range_i64(-6, 6))
        + LinExpr::var("Z").scaled(rng.range_i64(-6, 6))
        + LinExpr::constant(rng.range_i64(-20, 20))
}

/// A random affine expression over a wider pool of variables, so queries
/// split into several independent components and exercise the slicer.
fn arb_wide_expr(rng: &mut Rng) -> LinExpr {
    const VARS: [&str; 6] = ["X", "Y", "Z", "P", "Q", "R"];
    let a = VARS[rng.index(VARS.len())];
    let b = VARS[rng.index(VARS.len())];
    LinExpr::var(a).scaled(rng.range_i64(-3, 3))
        + LinExpr::var(b).scaled(rng.range_i64(-3, 3))
        + LinExpr::constant(rng.range_i64(-6, 6))
}

fn arb_pred_with(rng: &mut Rng, expr: fn(&mut Rng) -> LinExpr) -> Pred {
    let a = expr(rng);
    let b = expr(rng);
    match rng.index(3) {
        0 => Pred::le(a, b),
        1 => Pred::ge(a, b),
        _ => Pred::eq(a, b),
    }
}

fn arb_pred(rng: &mut Rng) -> Pred {
    arb_pred_with(rng, arb_expr)
}

fn model_for(x: i64, y: i64, z: i64) -> Model {
    let mut m = Model::new();
    m.assign(Term::var("X"), x);
    m.assign(Term::var("Y"), y);
    m.assign(Term::var("Z"), z);
    m
}

/// Soundness of proofs: if the solver proves `facts ⊢ goal`, then every
/// random assignment satisfying the facts also satisfies the goal.
#[test]
fn proofs_are_sound() {
    let mut rng = Rng::new(0xA11CE);
    for case in 0..64 {
        let facts: Vec<Pred> = (0..rng.index(4)).map(|_| arb_pred(&mut rng)).collect();
        let goal = arb_pred(&mut rng);
        let mut solver = Solver::new();
        for f in &facts {
            solver.assume(f.clone());
        }
        if solver.prove(&goal) == Outcome::Proved {
            for _ in 0..20 {
                let (x, y, z) = (rng.range_i64(0, 11), rng.range_i64(0, 11), rng.range_i64(0, 11));
                let m = model_for(x, y, z);
                let facts_hold = facts.iter().all(|f| f.eval(&m).unwrap_or(false));
                if facts_hold {
                    assert_eq!(
                        goal.eval(&m),
                        Some(true),
                        "case {case}: proved goal {goal} violated at X={x} Y={y} Z={z}"
                    );
                }
            }
        }
    }
}

/// Counterexamples are genuine: a `Disproved` outcome's model satisfies
/// every fact and falsifies the goal (on the atoms it determines).
#[test]
fn counterexamples_are_genuine() {
    let mut rng = Rng::new(0xBEEF);
    for case in 0..64 {
        let facts: Vec<Pred> = (0..rng.index(3)).map(|_| arb_pred(&mut rng)).collect();
        let goal = arb_pred(&mut rng);
        let mut solver = Solver::new();
        for f in &facts {
            solver.assume(f.clone());
        }
        if let Outcome::Disproved(model) = solver.prove(&goal) {
            // The model only assigns the atoms that survive saturation
            // (equality substitution can eliminate variables), so evaluate
            // what it covers: nothing it determines may contradict the claim.
            for f in &facts {
                assert_ne!(
                    f.eval(&model),
                    Some(false),
                    "case {case}: fact {f} violated by model {model}"
                );
            }
            assert_ne!(
                goal.eval(&model),
                Some(true),
                "case {case}: goal {goal} not refuted by model {model}"
            );
        }
    }
}

/// Linear-expression arithmetic agrees with integer arithmetic under
/// evaluation.
#[test]
fn expression_arithmetic_matches_evaluation() {
    let mut rng = Rng::new(0xCAFE);
    for _ in 0..64 {
        let a = arb_expr(&mut rng);
        let b = arb_expr(&mut rng);
        let (x, y, z) = (rng.range_i64(-10, 9), rng.range_i64(-10, 9), rng.range_i64(-10, 9));
        let scale = rng.range_i64(-5, 4);
        let m = model_for(x, y, z);
        let va = m.eval(&a).unwrap();
        let vb = m.eval(&b).unwrap();
        assert_eq!(m.eval(&(a.clone() + b.clone())).unwrap(), va + vb);
        assert_eq!(m.eval(&(a.clone() - b.clone())).unwrap(), va - vb);
        assert_eq!(m.eval(&a.scaled(scale)).unwrap(), va * scale);
        assert_eq!(m.eval(&a.multiply(&b)).unwrap(), va * vb);
    }
}

/// Trivial reflexive facts are always provable, and contradictions never are.
#[test]
fn reflexivity_and_contradiction() {
    let mut rng = Rng::new(0xD00D);
    for _ in 0..64 {
        let e = arb_expr(&mut rng);
        let mut solver = Solver::new();
        assert_eq!(solver.prove(&Pred::eq(e.clone(), e.clone())), Outcome::Proved);
        assert_eq!(solver.prove(&Pred::le(e.clone(), e.clone())), Outcome::Proved);
        let absurd = Pred::lt(e.clone(), e);
        assert_ne!(solver.prove(&absurd), Outcome::Proved);
    }
}

// ---------------------------------------------------------------------------
// A/B properties: the optimized pipeline versus the naive one.
// ---------------------------------------------------------------------------

/// Runs the same fact/goal set through a solver with `config` and returns
/// the outcome sequence (each goal asked twice, to exercise the cache).
fn run_queries(config: SolverConfig, facts: &[Pred], goals: &[Pred]) -> Vec<Outcome> {
    let mut solver = Solver::with_config(config);
    for f in facts {
        solver.assume(f.clone());
    }
    let mut outcomes = Vec::new();
    for g in goals {
        outcomes.push(solver.prove(g));
        outcomes.push(solver.prove(g));
    }
    outcomes
}

/// The sliced + cached solver returns the same `Outcome` as a fresh naive
/// (cache-disabled, slicing-disabled) solver on randomized fact/goal sets
/// drawn from one connected variable pool. With a single component the slice
/// is the whole fact set, so outcomes must be *identical*, models included.
#[test]
fn ab_sliced_cached_matches_naive_connected() {
    let mut rng = Rng::new(0x5EED);
    for case in 0..96 {
        let facts: Vec<Pred> = (0..rng.index(4)).map(|_| arb_pred(&mut rng)).collect();
        let goals: Vec<Pred> = (0..1 + rng.index(3)).map(|_| arb_pred(&mut rng)).collect();
        let fast = run_queries(SolverConfig::default(), &facts, &goals);
        let naive = run_queries(SolverConfig::naive(), &facts, &goals);
        assert_eq!(fast, naive, "case {case}: facts {facts:?} goals {goals:?}");
    }
}

/// Same A/B over a wider variable pool, where queries genuinely split into
/// disconnected components. Proved/not-proved classification must agree
/// (that is what the checker consumes); Disproved models may legitimately
/// assign fewer atoms under slicing, so they are validated semantically
/// instead of syntactically.
#[test]
fn ab_sliced_cached_agrees_with_naive_disconnected() {
    let mut rng = Rng::new(0xFACADE);
    for case in 0..24 {
        let facts: Vec<Pred> =
            (0..rng.index(4)).map(|_| arb_pred_with(&mut rng, arb_wide_expr)).collect();
        let goals: Vec<Pred> =
            (0..1 + rng.index(2)).map(|_| arb_pred_with(&mut rng, arb_wide_expr)).collect();
        let fast = run_queries(SolverConfig::default(), &facts, &goals);
        let naive = run_queries(SolverConfig::naive(), &facts, &goals);
        assert_eq!(fast.len(), naive.len());
        for (i, (f, n)) in fast.iter().zip(naive.iter()).enumerate() {
            assert_eq!(
                f.is_proved(),
                n.is_proved(),
                "case {case} query {i}: fast {f:?} vs naive {n:?}\nfacts {facts:?}\ngoals {goals:?}"
            );
            if let Outcome::Disproved(model) = f {
                let goal = &goals[i / 2];
                assert_ne!(
                    goal.eval(model),
                    Some(true),
                    "case {case} query {i}: sliced counterexample does not refute {goal}"
                );
            }
        }
    }
}

/// Asking the same query twice through the cache returns a byte-identical
/// outcome (models included), and the hit is visible in the stats.
#[test]
fn cached_answers_are_byte_identical() {
    let mut rng = Rng::new(0x7E57);
    for _ in 0..48 {
        let facts: Vec<Pred> = (0..rng.index(4)).map(|_| arb_pred(&mut rng)).collect();
        let goal = arb_pred(&mut rng);
        let mut solver = Solver::new();
        for f in &facts {
            solver.assume(f.clone());
        }
        let first = solver.prove(&goal);
        let second = solver.prove(&goal);
        assert_eq!(first, second);
        assert!(solver.stats().cache_hits >= 1);
    }
}

/// An *undecidable* residual must not let the sliced pipeline fabricate a
/// counterexample. `2·F(X) == 1` has no integer model, but the engine can
/// neither prove that (it is rationally feasible) nor find a model — so a
/// query about an unrelated variable must answer `Unknown`, exactly like the
/// naive pipeline, rather than `Disproved` with a model that extends to no
/// model of the full fact set.
#[test]
fn undecided_residual_degrades_disproved_to_unknown() {
    let app = LinExpr::from_term(Term::app("F", vec![LinExpr::var("X")]), 2);
    let fact = Pred::eq(app, LinExpr::constant(1));
    let goal = Pred::eq(LinExpr::var("Z"), LinExpr::constant(9));

    let mut fast = Solver::new();
    fast.assume(fact.clone());
    let fast_outcome = fast.prove(&goal);

    let mut naive = Solver::with_config(SolverConfig::naive());
    naive.assume(fact);
    let naive_outcome = naive.prove(&goal);

    assert_eq!(naive_outcome, Outcome::Unknown);
    assert_eq!(fast_outcome, naive_outcome);
}

/// When the residual is verifiably satisfiable, sliced counterexamples are
/// kept — the models combine.
#[test]
fn satisfiable_residual_keeps_counterexamples() {
    let mut fast = Solver::new();
    fast.assume(Pred::ge(LinExpr::var("A"), LinExpr::constant(1)));
    match fast.prove(&Pred::eq(LinExpr::var("Z"), LinExpr::constant(9))) {
        Outcome::Disproved(model) => {
            assert_ne!(model.value(&Term::var("Z")), Some(9));
        }
        other => panic!("expected Disproved, got {other:?}"),
    }
}

/// `prove_under` on a recorded mark agrees with a fresh solver seeded with
/// the same facts — the indexed-scope path cannot change answers.
#[test]
fn prove_under_matches_fresh_solver() {
    let mut rng = Rng::new(0x1DEA);
    for case in 0..48 {
        let base: Vec<Pred> = (0..rng.index(3)).map(|_| arb_pred(&mut rng)).collect();
        let extra: Vec<Pred> = (0..rng.index(3)).map(|_| arb_pred(&mut rng)).collect();
        let goal = arb_pred(&mut rng);

        let mut recorded = Solver::new();
        for f in &base {
            recorded.assume(f.clone());
        }
        let mark = recorded.mark();
        // Pollute the current scope after the mark; prove_under must ignore it.
        recorded.assume(Pred::ge(LinExpr::var("Noise"), LinExpr::constant(1)));
        let under = recorded.prove_under(mark, &extra, &goal);

        let mut fresh = Solver::new();
        for f in base.iter().chain(extra.iter()) {
            fresh.assume(f.clone());
        }
        let direct = fresh.prove(&goal);
        assert_eq!(under, direct, "case {case}: base {base:?} extra {extra:?} goal {goal}");
    }
}
