//! Property-based tests for the solver: whatever the engine *proves* must
//! hold on random concrete assignments, and models it returns must actually
//! satisfy / refute what they claim to.

use lilac_solver::{LinExpr, Model, Outcome, Pred, Solver, Term};
use proptest::prelude::*;

/// A small random affine expression over three variables.
fn arb_expr() -> impl Strategy<Value = LinExpr> {
    (
        -6i64..=6,
        -6i64..=6,
        -6i64..=6,
        -20i64..=20,
    )
        .prop_map(|(a, b, c, k)| {
            LinExpr::var("X").scaled(a)
                + LinExpr::var("Y").scaled(b)
                + LinExpr::var("Z").scaled(c)
                + LinExpr::constant(k)
        })
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (arb_expr(), arb_expr(), 0..3u8).prop_map(|(a, b, kind)| match kind {
        0 => Pred::le(a, b),
        1 => Pred::ge(a, b),
        _ => Pred::eq(a, b),
    })
}

fn model_for(x: i64, y: i64, z: i64) -> Model {
    let mut m = Model::new();
    m.assign(Term::var("X"), x);
    m.assign(Term::var("Y"), y);
    m.assign(Term::var("Z"), z);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of proofs: if the solver proves `facts ⊢ goal`, then every
    /// random assignment satisfying the facts also satisfies the goal.
    #[test]
    fn proofs_are_sound(
        facts in proptest::collection::vec(arb_pred(), 0..4),
        goal in arb_pred(),
        assignments in proptest::collection::vec((0i64..12, 0i64..12, 0i64..12), 20),
    ) {
        let mut solver = Solver::new();
        for f in &facts {
            solver.assume(f.clone());
        }
        if solver.prove(&goal) == Outcome::Proved {
            for (x, y, z) in assignments {
                let m = model_for(x, y, z);
                let facts_hold = facts.iter().all(|f| f.eval(&m).unwrap_or(false));
                if facts_hold {
                    prop_assert_eq!(goal.eval(&m), Some(true),
                        "proved goal violated at X={} Y={} Z={}", x, y, z);
                }
            }
        }
    }

    /// Counterexamples are genuine: a `Disproved` outcome's model satisfies
    /// every fact and falsifies the goal.
    #[test]
    fn counterexamples_are_genuine(
        facts in proptest::collection::vec(arb_pred(), 0..3),
        goal in arb_pred(),
    ) {
        let mut solver = Solver::new();
        for f in &facts {
            solver.assume(f.clone());
        }
        if let Outcome::Disproved(model) = solver.prove(&goal) {
            // The model only assigns the atoms that survive saturation
            // (equality substitution can eliminate variables), so evaluate
            // what it covers: nothing it determines may contradict the claim.
            for f in &facts {
                prop_assert_ne!(f.eval(&model), Some(false), "fact violated by model {}", model);
            }
            prop_assert_ne!(goal.eval(&model), Some(true), "goal not refuted by model {}", model);
        }
    }

    /// Linear-expression arithmetic agrees with integer arithmetic under
    /// evaluation.
    #[test]
    fn expression_arithmetic_matches_evaluation(
        a in arb_expr(),
        b in arb_expr(),
        x in -10i64..10, y in -10i64..10, z in -10i64..10,
        scale in -5i64..5,
    ) {
        let m = model_for(x, y, z);
        let va = m.eval(&a).unwrap();
        let vb = m.eval(&b).unwrap();
        prop_assert_eq!(m.eval(&(a.clone() + b.clone())).unwrap(), va + vb);
        prop_assert_eq!(m.eval(&(a.clone() - b.clone())).unwrap(), va - vb);
        prop_assert_eq!(m.eval(&a.scaled(scale)).unwrap(), va * scale);
        prop_assert_eq!(m.eval(&a.multiply(&b)).unwrap(), va * vb);
    }

    /// Trivial reflexive facts are always provable, and contradictions never
    /// are.
    #[test]
    fn reflexivity_and_contradiction(e in arb_expr()) {
        let mut solver = Solver::new();
        prop_assert_eq!(solver.prove(&Pred::eq(e.clone(), e.clone())), Outcome::Proved);
        prop_assert_eq!(solver.prove(&Pred::le(e.clone(), e.clone())), Outcome::Proved);
        let absurd = Pred::lt(e.clone(), e);
        prop_assert_ne!(solver.prove(&absurd), Outcome::Proved);
    }
}
