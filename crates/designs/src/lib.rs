//! Bundled Lilac designs: the standard library and the paper's case studies.
//!
//! Every design ships as Lilac source text (under `lilac/`), is parsed with
//! `lilac-ast`, type-checks with `lilac-core`, and elaborates with
//! `lilac-elab`. The set mirrors the designs the paper reports on:
//!
//! | Design | Paper reference |
//! |---|---|
//! | Standard library (`stdlib.lilac`) | §5.1, Figure 8 ("Lilac's standard library") |
//! | FPU over FloPoCo cores (`fpu.lilac`) | §2, §3, Table 1 |
//! | Vivado divider wrappers (`divider.lilac`) | §6.1, Figure 9 |
//! | Gaussian blur pyramid (`gbp.lilac`) | §7, Figure 13 |
//! | FFT, Lilac-only and FloPoCo variants (`fft.lilac`) | Figure 8 |
//! | RISC 3-stage pipeline (`risc.lilac`) | Figure 8 |
//! | BLAS level-1 kernels (`blas.lilac`) | Figure 8 |
//!
//! # Example
//!
//! ```
//! use lilac_designs::Design;
//!
//! let fpu = Design::Fpu.program()?;
//! assert!(fpu.module_named("FPU").is_some());
//! assert!(Design::all().len() >= 6);
//! # Ok::<(), lilac_util::LilacError>(())
//! ```

use lilac_ast::{parse_program, Program};
use lilac_util::diag::Result;
use lilac_util::span::SourceMap;

/// The Lilac standard library source.
pub const STDLIB_SRC: &str = include_str!("../lilac/stdlib.lilac");
/// The FPU design source (requires the standard library).
pub const FPU_SRC: &str = include_str!("../lilac/fpu.lilac");
/// The Vivado divider wrapper source (requires the standard library).
pub const DIVIDER_SRC: &str = include_str!("../lilac/divider.lilac");
/// The Gaussian blur pyramid source (requires the standard library).
pub const GBP_SRC: &str = include_str!("../lilac/gbp.lilac");
/// The Lilac-only FFT source (requires the standard library).
pub const FFT_SRC: &str = include_str!("../lilac/fft.lilac");
/// The FloPoCo-based FFT source (requires the standard library and the FPU's
/// generator declarations).
pub const FFT_FLOPOCO_SRC: &str = include_str!("../lilac/fft_flopoco.lilac");
/// The RISC 3-stage pipeline source (requires the standard library).
pub const RISC_SRC: &str = include_str!("../lilac/risc.lilac");
/// The BLAS level-1 kernel source (requires the standard library).
pub const BLAS_SRC: &str = include_str!("../lilac/blas.lilac");

/// The bundled designs, in the order Figure 8 lists them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum Design {
    /// RISC 3-stage pipeline.
    Risc3,
    /// Gaussian blur pyramid (§7).
    Gbp,
    /// FFT built only from Lilac components.
    FftLilacOnly,
    /// FFT using FloPoCo-generated floating-point cores.
    FftFloPoCo,
    /// The standard library itself.
    Stdlib,
    /// BLAS level-1 kernels.
    BlasLevel1,
    /// The FloPoCo FPU (§2–§3).
    Fpu,
    /// The Vivado divider wrappers (§6.1).
    Divider,
}

impl Design {
    /// All bundled designs. The first six are the rows of Figure 8.
    pub fn all() -> Vec<Design> {
        vec![
            Design::Risc3,
            Design::Gbp,
            Design::FftLilacOnly,
            Design::FftFloPoCo,
            Design::Stdlib,
            Design::BlasLevel1,
            Design::Fpu,
            Design::Divider,
        ]
    }

    /// The display name used in Figure 8.
    pub fn name(&self) -> &'static str {
        match self {
            Design::Risc3 => "RISC 3-stage Base",
            Design::Gbp => "Gaussian Blur Pyramid (§7)",
            Design::FftLilacOnly => "FFT (Lilac only)",
            Design::FftFloPoCo => "FFT (using FloPoCo)",
            Design::Stdlib => "Lilac's standard library",
            Design::BlasLevel1 => "BLAS Level 1 Kernels",
            Design::Fpu => "FloPoCo FPU",
            Design::Divider => "Vivado divider wrappers",
        }
    }

    /// The design-specific source files (excluding the standard library),
    /// in `(name, text)` form.
    pub fn sources(&self) -> Vec<(&'static str, &'static str)> {
        match self {
            Design::Risc3 => vec![("risc.lilac", RISC_SRC)],
            Design::Gbp => vec![("gbp.lilac", GBP_SRC)],
            Design::FftLilacOnly => vec![("fft.lilac", FFT_SRC)],
            Design::FftFloPoCo => {
                vec![
                    ("fpu.lilac", FPU_SRC),
                    ("fft.lilac", FFT_SRC),
                    ("fft_flopoco.lilac", FFT_FLOPOCO_SRC),
                ]
            }
            Design::Stdlib => vec![],
            Design::BlasLevel1 => vec![("blas.lilac", BLAS_SRC)],
            Design::Fpu => vec![("fpu.lilac", FPU_SRC)],
            Design::Divider => vec![("divider.lilac", DIVIDER_SRC)],
        }
    }

    /// Number of non-empty, non-comment source lines, including the standard
    /// library the design builds on (Figure 8's "Lines" column counts the
    /// whole compiled program).
    pub fn line_count(&self) -> usize {
        let mut total = count_lines(STDLIB_SRC);
        for (_, src) in self.sources() {
            total += count_lines(src);
        }
        total
    }

    /// The full program: standard library plus the design's own modules.
    ///
    /// # Errors
    ///
    /// Returns parse errors (none are expected for the bundled sources).
    pub fn program(&self) -> Result<Program> {
        Ok(self.program_with_map()?.0)
    }

    /// The full program together with the source map for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns parse errors (none are expected for the bundled sources).
    pub fn program_with_map(&self) -> Result<(Program, SourceMap)> {
        let mut sources: Vec<(&str, &str)> = Vec::new();
        // The FFT's FloPoCo variant reuses the FPU's generator declarations,
        // so deduplicate shared files.
        sources.push(("stdlib.lilac", STDLIB_SRC));
        for (name, src) in self.sources() {
            if !sources.iter().any(|(n, _)| *n == name) {
                sources.push((name, src));
            }
        }
        let mut map = SourceMap::new();
        let mut program = Program::new();
        for (name, src) in sources {
            let file = map.add_file(name, src);
            let parsed = lilac_ast::parse_program_in(file, src)?;
            program.extend_with(parsed);
        }
        Ok((program, map))
    }

    /// The paper's reported line count for this design (Figure 8), if it is
    /// one of the six designs the figure lists.
    pub fn paper_lines(&self) -> Option<usize> {
        match self {
            Design::Risc3 => Some(480),
            Design::Gbp => Some(595),
            Design::FftLilacOnly => Some(1207),
            Design::FftFloPoCo => Some(1221),
            Design::Stdlib => Some(1310),
            Design::BlasLevel1 => Some(1346),
            _ => None,
        }
    }

    /// The paper's reported type-check time in milliseconds (Figure 8).
    pub fn paper_time_ms(&self) -> Option<u64> {
        match self {
            Design::Risc3 => Some(160),
            Design::Gbp => Some(205),
            Design::FftLilacOnly => Some(403),
            Design::FftFloPoCo => Some(442),
            Design::Stdlib => Some(900),
            Design::BlasLevel1 => Some(1295),
            _ => None,
        }
    }
}

/// Parses just the standard library.
///
/// # Errors
///
/// Returns parse errors (none are expected).
pub fn stdlib() -> Result<Program> {
    let (p, _) = parse_program("stdlib.lilac", STDLIB_SRC)?;
    Ok(p)
}

fn count_lines(src: &str) -> usize {
    src.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with("//")).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lilac_core::check_program;

    #[test]
    fn all_designs_parse() {
        for design in Design::all() {
            let program = design.program().unwrap_or_else(|e| {
                panic!("{} failed to parse: {e}", design.name());
            });
            assert!(program.module_count() > 5, "{}", design.name());
            assert!(design.line_count() > 40, "{}", design.name());
        }
    }

    #[test]
    fn all_designs_type_check() {
        for design in Design::all() {
            let (program, map) = design.program_with_map().unwrap();
            match check_program(&program) {
                Ok(report) => assert!(report.is_ok(), "{}", design.name()),
                Err(e) => panic!("{} failed to check:\n{}", design.name(), e.render(&map)),
            }
        }
    }

    #[test]
    fn design_metadata_is_consistent() {
        assert_eq!(Design::all().len(), 8);
        let figure8: Vec<_> =
            Design::all().into_iter().filter(|d| d.paper_lines().is_some()).collect();
        assert_eq!(figure8.len(), 6);
        for d in figure8 {
            assert!(d.paper_time_ms().is_some());
        }
        assert!(Design::Stdlib.sources().is_empty());
        assert!(Design::FftFloPoCo.line_count() > Design::FftLilacOnly.line_count());
    }

    #[test]
    fn stdlib_helper_parses() {
        let lib = stdlib().unwrap();
        assert!(lib.module_named("Shift").is_some());
        assert!(lib.module_named("Max").is_some());
        assert!(lib.module_named("Reg").is_some());
    }
}
