//! Benchmarks for the compile-time costs the paper reports (Figure 8's
//! type-check times), elaboration and cost-model throughput, and — the
//! headline of the obligation-discharge rework — the optimized-vs-naive
//! solver A/B.
//!
//! The container this workspace builds in has no access to crates.io, so
//! instead of Criterion this is a small self-contained harness
//! (`harness = false`): warm up, take the minimum of N timed runs (the
//! statistic least sensitive to scheduler noise), and print one line per
//! benchmark. Run with `cargo bench -p lilac-bench`.

use lilac_core::{check_program, check_program_with, CheckOptions};
use lilac_designs::Design;
use lilac_elab::{elaborate, ElabConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Minimum-of-N timing with warmup.
fn bench(name: &str, samples: usize, mut f: impl FnMut()) {
    for _ in 0..2 {
        f();
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        total += elapsed;
        best = best.min(elapsed);
    }
    println!("{name:<55} min {best:>12.3?}   mean {:>12.3?}", total / samples as u32);
}

fn bench_typecheck() {
    println!("-- typecheck (optimized pipeline) --");
    for design in Design::all() {
        let program = design.program().expect("bundled design parses");
        bench(&format!("typecheck/{}", design.name()), 10, || {
            check_program(std::hint::black_box(&program)).expect("design checks");
        });
    }
}

fn bench_parse() {
    println!("-- parse --");
    for design in [Design::Stdlib, Design::Gbp, Design::BlasLevel1] {
        bench(&format!("parse/{}", design.name()), 20, || {
            design.program().expect("parses");
        });
    }
}

fn bench_elaborate() {
    println!("-- elaborate --");
    let fpu = Design::Fpu.program().expect("fpu parses");
    bench("elaborate/FPU W=32", 10, || {
        elaborate(&fpu, "FPU", &BTreeMap::from([("W".to_string(), 32)]), &ElabConfig::default())
            .expect("elaborates");
    });
    let gbp = Design::Gbp.program().expect("gbp parses");
    bench("elaborate/GBP W=8", 10, || {
        elaborate(&gbp, "Gbp", &BTreeMap::from([("W".to_string(), 8)]), &ElabConfig::default())
            .expect("elaborates");
    });
}

fn bench_exhibits() {
    println!("-- exhibits --");
    bench("exhibits/table1", 10, || {
        lilac_bench::table1().expect("table1");
    });
    bench("exhibits/figure13", 10, || {
        lilac_bench::figure13().expect("figure13");
    });
}

fn bench_solver_ab() {
    println!("-- solver A/B: optimized obligation discharge vs naive baseline --");
    let naive = CheckOptions::naive();
    for design in Design::all() {
        let program = design.program().expect("parses");
        bench(&format!("naive-typecheck/{}", design.name()), 5, || {
            check_program_with(std::hint::black_box(&program), &naive).expect("design checks");
        });
    }
    let (rows, summary) = lilac_bench::solver_speedup(5).expect("speedup harness");
    println!();
    println!(
        "{:<30} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "Design", "fast", "cold", "naive", "speedup", "cold-spd", "hit-rate"
    );
    for row in &rows {
        println!(
            "{:<30} {:>10.3?} {:>10.3?} {:>10.3?} {:>8.2}x {:>8.2}x {:>8.0}%",
            row.design.name(),
            row.fast,
            row.cold,
            row.naive,
            row.speedup,
            row.cold_speedup,
            row.cache_hit_rate * 100.0
        );
    }
    println!(
        "TOTAL fast {:.3?}  cold {:.3?}  naive {:.3?}  speedup {:.2}x (cold {:.2}x)",
        summary.fast_total,
        summary.cold_total,
        summary.naive_total,
        summary.speedup,
        summary.cold_speedup
    );
}

fn bench_vsim() {
    use lilac_ir::NodeKind;
    println!("-- Verilog oracle: emit + parse + 64-cycle differential simulation --");
    // The netlist the fifth oracle pays for on every fuzz case, at a
    // representative size: the hand-scheduled FPU plus a delay-line tail.
    let mut n = lilac_li::fpu::ls_fpu(32, 4, 2);
    let o = n.output("o").expect("ls fpu output");
    let tail = n.add_node(NodeKind::Delay(3), vec![o], 32, "tail");
    n.add_output("o_tail", tail);
    bench("vsim/emit ls_fpu(32,4,2)", 50, || {
        std::hint::black_box(lilac_ir::emit_verilog(&n));
    });
    let verilog = lilac_ir::emit_verilog(&n);
    bench("vsim/parse ls_fpu(32,4,2)", 50, || {
        lilac_vsim::parse_design(std::hint::black_box(&verilog)).expect("parses");
    });
    let design = lilac_vsim::parse_design(&verilog).expect("parses");
    bench("vsim/simulate 64 cycles vs lilac-sim", 20, || {
        let mut vsim = lilac_vsim::VSimulator::new(&design).expect("simulatable");
        let mut sim = lilac_sim::Simulator::new(&n).expect("valid");
        for c in 0..64u64 {
            for name in ["a", "b"] {
                sim.set_input(name, c * 7 + 1);
                vsim.set_input(name, c * 7 + 1);
            }
            sim.set_input("op", c & 1);
            vsim.set_input("op", c & 1);
            assert_eq!(sim.peek("o_tail"), vsim.peek("o_tail"));
            sim.step();
            vsim.step();
        }
    });
}

fn bench_opt() {
    println!("-- netlist optimizer (lilac-opt) on the paper designs --");
    let netlists = lilac_bench::paper_netlists().expect("paper netlists");
    for (name, netlist) in &netlists {
        bench(&format!("opt/{name}"), 20, || {
            std::hint::black_box(lilac_opt::optimize(std::hint::black_box(netlist)));
        });
    }
    let rows = lilac_bench::optimizer_report(5_000, 3).expect("optimizer report");
    println!();
    println!(
        "{:<28} {:>6} {:>6} {:>7} {:>6} {:>6} {:>10} {:>10} {:>10} {:>9}",
        "Design",
        "nodes",
        "opt",
        "reduce",
        "seq",
        "opt",
        "opt-time",
        "sim-raw",
        "sim-opt",
        "speedup"
    );
    for row in &rows {
        println!(
            "{:<28} {:>6} {:>6} {:>6.1}% {:>6} {:>6} {:>10.3?} {:>10.3?} {:>10.3?} {:>8.2}x",
            row.design,
            row.stats.nodes_before,
            row.stats.nodes_after,
            row.stats.node_reduction() * 100.0,
            row.stats.sequential_before,
            row.stats.sequential_after,
            row.opt_time,
            row.sim_raw,
            row.sim_opt,
            row.sim_speedup
        );
    }
}

fn bench_retime() {
    println!("-- register retiming (lilac-opt::retime) on the paper designs --");
    let netlists = lilac_bench::paper_netlists().expect("paper netlists");
    for (name, netlist) in &netlists {
        bench(&format!("retime/{name}"), 10, || {
            std::hint::black_box(lilac_opt::retime(std::hint::black_box(netlist)));
        });
    }
    let rows = lilac_bench::retiming_report(3).expect("retiming report");
    println!();
    println!(
        "{:<28} {:>6} {:>4} {:>4} {:>9} {:>9} {:>8} {:>9} {:>9} {:>10}",
        "Design", "moves", "fwd", "bwd", "cp-ns", "cp-ns'", "fmax%", "regbits", "regbits'", "time"
    );
    for row in &rows {
        println!(
            "{:<28} {:>6} {:>4} {:>4} {:>9.2} {:>9.2} {:>+7.1}% {:>9} {:>9} {:>10.3?}",
            row.design,
            row.stats.moves(),
            row.stats.forward_moves,
            row.stats.backward_moves,
            row.stats.critical_path_before_ns,
            row.stats.critical_path_after_ns,
            row.stats.fmax_gain_pct(),
            row.stats.register_bits_before,
            row.stats.register_bits_after,
            row.retime_time
        );
    }
}

fn bench_sim() {
    println!("-- compiled simulation (lilac-sim tape) vs the interpreter --");
    let rows = lilac_bench::sim_backend_report(20_000, 3).expect("sim backend report");
    println!(
        "{:<28} {:>7} {:>12} {:>12} {:>9} {:>11}",
        "Design", "cycles", "interp", "compiled", "speedup", "64-lane-spd"
    );
    for row in &rows {
        println!(
            "{:<28} {:>7} {:>12.3?} {:>12.3?} {:>8.2}x {:>10.1}x",
            row.design, row.cycles, row.interp, row.compiled, row.speedup, row.lane_speedup
        );
    }
}

fn bench_fuzz() {
    println!(
        "-- fuzz throughput: generate + check x4 + elaborate + optimize + retime + simulate x8 \
         (+ 64-lane compiled batch) per case --"
    );
    let row = lilac_bench::fuzz_throughput(150, 0);
    println!(
        "fuzz/150-cases                                         {:>12.3?}   {:>7.0} cases/s   \
         ({} checked, {} rejected, {} obligations, fingerprint {:016x})",
        row.elapsed, row.cases_per_sec, row.checked, row.rejected, row.obligations, row.fingerprint
    );
}

fn main() {
    bench_parse();
    bench_typecheck();
    bench_elaborate();
    bench_exhibits();
    bench_vsim();
    bench_opt();
    bench_retime();
    bench_sim();
    bench_fuzz();
    bench_solver_ab();
}
