//! Criterion benchmarks: the compile-time costs the paper reports (Figure 8's
//! type-check times) plus elaboration and cost-model throughput for the
//! table/figure harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use lilac_core::check_program;
use lilac_designs::Design;
use lilac_elab::{elaborate, ElabConfig};
use std::collections::BTreeMap;

fn bench_typecheck(c: &mut Criterion) {
    let mut group = c.benchmark_group("typecheck");
    group.sample_size(10);
    for design in Design::all() {
        let program = design.program().expect("bundled design parses");
        group.bench_function(design.name(), |b| {
            b.iter(|| check_program(std::hint::black_box(&program)).expect("design checks"))
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    group.sample_size(20);
    for design in [Design::Stdlib, Design::Gbp, Design::BlasLevel1] {
        group.bench_function(design.name(), |b| b.iter(|| design.program().expect("parses")));
    }
    group.finish();
}

fn bench_elaborate(c: &mut Criterion) {
    let mut group = c.benchmark_group("elaborate");
    group.sample_size(10);
    let fpu = Design::Fpu.program().expect("fpu parses");
    group.bench_function("FPU W=32", |b| {
        b.iter(|| {
            elaborate(
                &fpu,
                "FPU",
                &BTreeMap::from([("W".to_string(), 32)]),
                &ElabConfig::default(),
            )
            .expect("elaborates")
        })
    });
    let gbp = Design::Gbp.program().expect("gbp parses");
    group.bench_function("GBP W=8", |b| {
        b.iter(|| {
            elaborate(
                &gbp,
                "Gbp",
                &BTreeMap::from([("W".to_string(), 8)]),
                &ElabConfig::default(),
            )
            .expect("elaborates")
        })
    });
    group.finish();
}

fn bench_harnesses(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhibits");
    group.sample_size(10);
    group.bench_function("table1", |b| b.iter(|| lilac_bench::table1().expect("table1")));
    group.bench_function("figure13", |b| b.iter(|| lilac_bench::figure13().expect("figure13")));
    group.finish();
}

criterion_group!(benches, bench_typecheck, bench_parse, bench_elaborate, bench_harnesses);
criterion_main!(benches);
