//! Acceptance for the known-bits optimizer feeder: on bundled designs
//! specialized to the LA/LI oracle's never-stall environment, the
//! `fold_known_bits` pass must strictly reduce node count beyond what the
//! purely syntactic passes achieve — by proving the `rv::auto_wrap` skid
//! buffer inert (its capture enable is constant zero, so its `RegEn`
//! registers hold their power-up value forever) and dissolving it.

use lilac_ir::Netlist;

/// The pre-analysis optimizer: the syntactic passes alone, to fixpoint.
/// This is the baseline `fold_known_bits` has to beat.
fn syntactic_fixpoint(netlist: &Netlist) -> Netlist {
    let mut n = netlist.clone();
    loop {
        let mut changed = 0;
        changed += lilac_opt::fold_constants(&mut n);
        changed += lilac_opt::simplify_muxes(&mut n);
        changed += lilac_opt::fuse_delays(&mut n);
        changed += lilac_opt::eliminate_common_subexpressions(&mut n);
        changed += lilac_opt::eliminate_dead_nodes(&mut n);
        if changed == 0 {
            break;
        }
    }
    n
}

/// Drives `a` and `b` with identical deterministic stimulus and checks
/// every declared output on every cycle.
fn assert_cycle_exact(a: &Netlist, b: &Netlist, cycles: usize) {
    let mut sa = lilac_sim::Simulator::new(a).expect("baseline simulates");
    let mut sb = lilac_sim::Simulator::new(b).expect("optimized simulates");
    let inputs: Vec<String> = a.inputs.iter().map(|p| p.name.clone()).collect();
    let outputs: Vec<String> = a.outputs.iter().map(|(p, _)| p.name.clone()).collect();
    for cycle in 0..cycles {
        for (k, name) in inputs.iter().enumerate() {
            let v = (cycle as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(k as u64);
            sa.set_input(name, v);
            sb.set_input(name, v);
        }
        sa.step();
        sb.step();
        for name in &outputs {
            assert_eq!(
                sa.peek(name),
                sb.peek(name),
                "{}: output `{name}` at cycle {cycle}",
                a.name
            );
        }
    }
}

/// The bundled ready–valid surfaces of Table 1, specialized to the
/// environment the LA/LI oracle drives (`valid_i`/`ready_i` held high).
fn never_stall_targets() -> Vec<(String, Netlist)> {
    let mut targets = Vec::new();
    for (design, netlist) in lilac_bench::paper_netlists().unwrap() {
        if design.contains("elaborated") {
            let wrapped = lilac_li::rv::auto_wrap(&netlist, 4);
            targets.push((
                format!("never-stall auto_wrap of {design}"),
                lilac_li::rv::never_stall(&wrapped),
            ));
        } else if design.starts_with("LI ") {
            targets.push((format!("never-stall {design}"), lilac_li::rv::never_stall(&netlist)));
        }
    }
    targets
}

#[test]
fn fold_known_bits_strictly_reduces_bundled_designs() {
    let targets = never_stall_targets();
    assert!(targets.len() >= 4, "expected the four Table 1 ready-valid surfaces");
    let mut strictly_reduced = 0;
    for (design, netlist) in &targets {
        let baseline = syntactic_fixpoint(netlist);
        let (full, stats) = lilac_opt::optimize_with_stats(netlist);
        assert!(
            full.node_count() <= baseline.node_count(),
            "{design}: full pipeline may never lose to the syntactic one \
             ({} vs {})",
            full.node_count(),
            baseline.node_count()
        );
        if full.node_count() < baseline.node_count() {
            strictly_reduced += 1;
            assert!(
                stats.known_bits_folded > 0,
                "{design}: the reduction must be attributable to fold_known_bits: {stats:?}"
            );
        }
        // The stripped skid buffer must be unobservable: cycle-exact
        // against the unoptimized specialization under live stimulus.
        assert_cycle_exact(netlist, &full, 48);
    }
    assert!(
        strictly_reduced >= 2,
        "fold_known_bits must strictly reduce node count on at least two \
         bundled designs (got {strictly_reduced} of {})",
        targets.len()
    );
}

#[test]
fn never_stall_wrapper_keeps_core_behavior() {
    // Under the never-stall specialization the wrapper's data outputs must
    // still equal the raw wrapper's outputs with the handshake held high —
    // the same functional contract the fifth oracle checks dynamically.
    let (_, fpu) = lilac_bench::paper_netlists()
        .unwrap()
        .into_iter()
        .find(|(d, _)| d.contains("FPU (elaborated"))
        .unwrap();
    let wrapped = lilac_li::rv::auto_wrap(&fpu, 4);
    let nostall = lilac_li::rv::never_stall(&wrapped);
    let mut sw = lilac_sim::Simulator::new(&wrapped).expect("wrapped simulates");
    let mut sn = lilac_sim::Simulator::new(&nostall).expect("specialized simulates");
    let data_inputs: Vec<String> = nostall.inputs.iter().map(|p| p.name.clone()).collect();
    let outputs: Vec<String> = wrapped.outputs.iter().map(|(p, _)| p.name.clone()).collect();
    for cycle in 0..48u64 {
        sw.set_input("valid_i", 1);
        sw.set_input("ready_i", 1);
        for (k, name) in data_inputs.iter().enumerate() {
            let v = cycle.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(k as u64);
            sw.set_input(name, v);
            sn.set_input(name, v);
        }
        sw.step();
        sn.step();
        for name in &outputs {
            assert_eq!(sw.peek(name), sn.peek(name), "output `{name}` at cycle {cycle}");
        }
    }
}
