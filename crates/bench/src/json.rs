//! A minimal JSON reader for `BENCH_*.json` artifacts.
//!
//! [`run_report_json`](crate::run_report_json) *writes* the artifact with a
//! hand-rolled serializer (the workspace deliberately has no external
//! crates); this module is its reading half, so `report_diff` can compare
//! two runs without pulling in a JSON dependency. It parses the full JSON
//! grammar the serializer can emit — objects, arrays, strings with basic
//! escapes, numbers (including floats), booleans, null — and rejects
//! anything else with a byte-offset error.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64`: every number the bench
/// serializer emits (microsecond times, counts, rates) fits without loss at
/// the magnitudes involved, and the diff logic only compares magnitudes.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is irrelevant to the diff, so a map is fine.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
///
/// # Errors
///
/// Returns a message with the byte offset of the first offending character.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected content at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    // \uXXXX and exotic escapes never appear in our
                    // artifacts; reject rather than mis-decode.
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Strings are UTF-8; copy whole code points.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-3.25").unwrap(), Value::Num(-3.25));
        assert_eq!(parse(r#""a\"b""#).unwrap(), Value::Str("a\"b".to_string()));
        assert_eq!(parse("[1, 2]").unwrap(), Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]));
        let obj = parse(r#"{"k": [true, {"n": 7}]}"#).unwrap();
        let inner = obj.get("k").unwrap().as_arr().unwrap();
        assert_eq!(inner[1].get("n").unwrap().as_num(), Some(7.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"k" 1}"#).is_err());
    }

    #[test]
    fn round_trips_a_real_bench_artifact() {
        // The serializer and this parser must agree on the actual artifact
        // shape — parse a freshly produced report end to end. A tiny
        // campaign keeps the test cheap; the other sections exercise the
        // empty-array corner of the serializer.
        let report = crate::RunReport {
            figure8: Vec::new(),
            netlists: Vec::new(),
            retiming: Vec::new(),
            incremental: Vec::new(),
            lints: Vec::new(),
            campaign: crate::campaign_bench(8, 0, 2),
        };
        let doc = parse(&crate::run_report_json(&report)).unwrap();
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("lilac-bench-run/v1"));
        assert_eq!(doc.get("figure8").and_then(Value::as_arr).map(<[Value]>::len), Some(0));
        let campaign = doc.get("campaign").expect("campaign section");
        assert_eq!(campaign.get("cases").and_then(Value::as_num), Some(8.0));
        assert_eq!(
            campaign.get("fingerprint").and_then(Value::as_str),
            Some(format!("{:016x}", report.campaign.fingerprint).as_str())
        );
        assert_eq!(
            campaign.get("signatures").and_then(Value::as_arr).map(<[Value]>::len),
            Some(report.campaign.signatures.len())
        );
    }
}
