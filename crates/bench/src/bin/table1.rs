//! Regenerates Table 1: resource usage of latency-sensitive (LS) and
//! latency-insensitive (LI) FPU implementations.

fn main() {
    let rows = lilac_bench::table1().expect("table 1 harness");
    println!("Table 1: Resource usage of LS and LI FPU implementations");
    println!("{:<16} {:>8} {:>11} {:>12}", "Configuration", "LUTs", "Registers", "Freq. (MHz)");
    for row in rows {
        println!(
            "{:<16} {:>8} {:>11} {:>12.1}",
            format!("{} (A={}, M={})", row.style, row.adder_latency, row.multiplier_latency),
            row.cost.luts,
            row.cost.registers,
            row.cost.fmax_mhz
        );
    }
    println!("\nPaper (Vivado): LI needs 29-31% more LUTs, 3-4x the registers, and");
    println!("reaches 21-25% lower frequency than LS at the same configuration.");
}
