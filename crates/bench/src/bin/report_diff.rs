//! Diffs two `BENCH_*.json` artifacts (`report_diff OLD.json NEW.json`) and
//! fails — exit code 1 — on a perf or coverage regression:
//!
//! - a netlist's optimized node count (`nodes_after`) grew,
//! - a retimed netlist's `fmax_after_mhz` dropped by more than 0.5 %,
//! - a design's incremental `warm_hit_rate` dropped by more than 0.05,
//! - the campaign's coverage-signature count shrank (the fuzzer lost reach).
//!
//! Timing fields (`check_time_us`, `cases_per_sec`, elapsed) are reported
//! but never gate: wall clock on shared CI runners is noise, while node
//! counts, hit rates and signature sets are deterministic. Rows present in
//! only one artifact are reported informationally too, so adding a design
//! or lint target never fails the gate.

use lilac_bench::json::{parse, Value};
use std::process::ExitCode;

/// The outcome of comparing two artifacts: hard failures and informational
/// notes, each human-readable and stable enough to grep in CI logs.
#[derive(Debug, Default)]
struct Diff {
    regressions: Vec<String>,
    notes: Vec<String>,
}

/// Indexes an array section's rows by the value of `key`.
fn rows_by<'a>(doc: &'a Value, section: &str, key: &str) -> Vec<(&'a str, &'a Value)> {
    doc.get(section)
        .and_then(Value::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| row.get(key).and_then(Value::as_str).map(|name| (name, row)))
                .collect()
        })
        .unwrap_or_default()
}

fn num(row: &Value, field: &str) -> Option<f64> {
    row.get(field).and_then(Value::as_num)
}

/// Walks one array section: rows matched by `key` are handed to `compare`
/// (old row, new row, emit into diff); unmatched rows become notes.
fn diff_section(
    diff: &mut Diff,
    old: &Value,
    new: &Value,
    section: &str,
    key: &str,
    mut compare: impl FnMut(&mut Diff, &str, &Value, &Value),
) {
    let old_rows = rows_by(old, section, key);
    let new_rows = rows_by(new, section, key);
    for &(name, new_row) in &new_rows {
        match old_rows.iter().find(|(n, _)| *n == name) {
            Some(&(_, old_row)) => compare(diff, name, old_row, new_row),
            None => diff.notes.push(format!("{section}/{name}: new row (no baseline)")),
        }
    }
    for &(name, _) in &old_rows {
        if !new_rows.iter().any(|(n, _)| *n == name) {
            diff.notes.push(format!("{section}/{name}: row disappeared"));
        }
    }
}

fn diff_reports(old: &Value, new: &Value) -> Diff {
    let mut diff = Diff::default();

    diff_section(&mut diff, old, new, "netlists", "netlist", |diff, name, o, n| {
        let (before, after) = (num(o, "nodes_after"), num(n, "nodes_after"));
        if let (Some(b), Some(a)) = (before, after) {
            if a > b {
                diff.regressions.push(format!("netlists/{name}: nodes_after grew {b} -> {a}"));
            } else if a < b {
                diff.notes.push(format!("netlists/{name}: nodes_after improved {b} -> {a}"));
            }
        }
    });

    diff_section(&mut diff, old, new, "retiming", "netlist", |diff, name, o, n| {
        if let (Some(b), Some(a)) = (num(o, "fmax_after_mhz"), num(n, "fmax_after_mhz")) {
            if a < b * 0.995 {
                diff.regressions.push(format!(
                    "retiming/{name}: fmax_after_mhz dropped {b:.3} -> {a:.3} (>0.5%)"
                ));
            }
        }
    });

    diff_section(&mut diff, old, new, "incremental", "design", |diff, name, o, n| {
        if let (Some(b), Some(a)) = (num(o, "warm_hit_rate"), num(n, "warm_hit_rate")) {
            if a < b - 0.05 {
                diff.regressions.push(format!(
                    "incremental/{name}: warm_hit_rate dropped {b:.3} -> {a:.3} (>0.05)"
                ));
            }
        }
    });

    diff_section(&mut diff, old, new, "figure8", "design", |diff, name, o, n| {
        if let (Some(b), Some(a)) = (num(o, "check_time_us"), num(n, "check_time_us")) {
            diff.notes.push(format!("figure8/{name}: check_time_us {b} -> {a} (informational)"));
        }
    });

    let sig_count = |doc: &Value| {
        doc.get("campaign")
            .and_then(|c| c.get("signatures"))
            .and_then(Value::as_arr)
            .map(<[Value]>::len)
    };
    match (sig_count(old), sig_count(new)) {
        (Some(b), Some(a)) if a < b => {
            diff.regressions.push(format!("campaign: coverage-signature count shrank {b} -> {a}"));
        }
        (Some(b), Some(a)) => {
            diff.notes.push(format!("campaign: coverage-signature count {b} -> {a}"));
        }
        (None, Some(_)) => diff.notes.push("campaign: new section (no baseline)".to_string()),
        (_, None) => diff.regressions.push("campaign: section missing from new report".to_string()),
    }
    if let (Some(old_c), Some(new_c)) = (old.get("campaign"), new.get("campaign")) {
        if let (Some(b), Some(a)) = (num(old_c, "cases_per_sec"), num(new_c, "cases_per_sec")) {
            diff.notes.push(format!("campaign: cases_per_sec {b:.1} -> {a:.1} (informational)"));
        }
        match (old_c.get("fingerprint"), new_c.get("fingerprint")) {
            (Some(b), Some(a)) if b != a => diff.notes.push(
                "campaign: fingerprint changed (expected whenever generator/oracle behaviour \
                 changes; determinism is gated by the sequential-vs-sharded diff, not here)"
                    .to_string(),
            ),
            _ => {}
        }
    }

    diff
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(old_path), Some(new_path)) = (args.next(), args.next()) else {
        eprintln!("usage: report_diff OLD.json NEW.json");
        return ExitCode::from(2);
    };
    let load = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        parse(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let (old, new) = match (load(&old_path), load(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for err in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("report_diff: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let diff = diff_reports(&old, &new);
    for note in &diff.notes {
        println!("note: {note}");
    }
    for regression in &diff.regressions {
        println!("REGRESSION: {regression}");
    }
    if diff.regressions.is_empty() {
        println!("report_diff: no regressions ({} notes)", diff.notes.len());
        ExitCode::SUCCESS
    } else {
        println!("report_diff: {} regression(s)", diff.regressions.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(nodes_after: u64, fmax: f64, hit_rate: f64, sigs: usize) -> Value {
        let sig_rows: Vec<String> = (0..sigs)
            .map(|i| format!("{{\"signature\": \"{i:#06x}\", \"cases\": 1, \"bits\": \"x\"}}"))
            .collect();
        parse(&format!(
            r#"{{
              "schema": "lilac-bench-run/v1",
              "figure8": [{{"design": "gbp", "check_time_us": 100}}],
              "netlists": [{{"netlist": "fpu", "nodes_before": 90, "nodes_after": {nodes_after}}}],
              "retiming": [{{"netlist": "fpu", "fmax_after_mhz": {fmax}}}],
              "incremental": [{{"design": "gbp", "warm_hit_rate": {hit_rate}}}],
              "lints": [],
              "campaign": {{"cases": 120, "shards": 2, "cases_per_sec": 50.0,
                            "fingerprint": "00000000000000aa",
                            "signatures": [{}]}}
            }}"#,
            sig_rows.join(",")
        ))
        .expect("test artifact parses")
    }

    #[test]
    fn identical_reports_are_clean() {
        let a = artifact(80, 450.0, 0.9, 10);
        let diff = diff_reports(&a, &a);
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(!diff.notes.is_empty(), "timing notes are informational but present");
    }

    #[test]
    fn each_gate_fires_on_its_regression() {
        let base = artifact(80, 450.0, 0.9, 10);
        for (bad, expect) in [
            (artifact(81, 450.0, 0.9, 10), "nodes_after grew"),
            (artifact(80, 440.0, 0.9, 10), "fmax_after_mhz dropped"),
            (artifact(80, 450.0, 0.8, 10), "warm_hit_rate dropped"),
            (artifact(80, 450.0, 0.9, 9), "signature count shrank"),
        ] {
            let diff = diff_reports(&base, &bad);
            assert_eq!(diff.regressions.len(), 1, "{expect}: {:?}", diff.regressions);
            assert!(diff.regressions[0].contains(expect), "{:?}", diff.regressions);
        }
    }

    #[test]
    fn improvements_and_noise_do_not_gate() {
        let base = artifact(80, 450.0, 0.9, 10);
        // Fewer nodes, slightly lower fmax (within 0.5%), tiny hit-rate dip
        // (within 0.05), more signatures: all fine.
        let better = artifact(70, 448.5, 0.87, 12);
        let diff = diff_reports(&base, &better);
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
    }

    #[test]
    fn new_and_missing_rows_are_notes_not_failures() {
        let base = artifact(80, 450.0, 0.9, 10);
        let mut renamed = artifact(80, 450.0, 0.9, 10);
        if let Value::Obj(map) = &mut renamed {
            map.insert(
                "netlists".to_string(),
                parse(r#"[{"netlist": "alu", "nodes_before": 5, "nodes_after": 5}]"#).unwrap(),
            );
        }
        let diff = diff_reports(&base, &renamed);
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(diff.notes.iter().any(|n| n.contains("new row")));
        assert!(diff.notes.iter().any(|n| n.contains("disappeared")));
    }
}
