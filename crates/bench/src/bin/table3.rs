//! Regenerates Table 3: generators integrated with Lilac and the interface
//! features needed to capture them.

fn main() {
    println!("Table 3: Generators integrated with Lilac and features needed");
    println!("{:<14} Features", "Generator");
    for row in lilac_bench::table3() {
        let features: Vec<String> =
            row.features.iter().map(std::string::ToString::to_string).collect();
        println!("{:<14} {}", row.generator, features.join(", "));
    }
}
