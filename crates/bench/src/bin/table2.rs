//! Regenerates Table 2: when an interface's timing behaviour is known.

fn main() {
    println!("Table 2: When an interface's timing behavior is known");
    println!("{:<28} {:>8} {:>9} {:>9}", "Interface", "Design", "Compile", "Execute");
    for row in lilac_bench::table2() {
        let mark = |b: bool| if b { "yes" } else { "no" };
        println!(
            "{:<28} {:>8} {:>9} {:>9}",
            row.style.to_string(),
            mark(row.known.0),
            mark(row.known.1),
            mark(row.known.2)
        );
    }
}
