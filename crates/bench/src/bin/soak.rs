//! Soaks the fault-tolerant `CheckService` and reports request latencies.
//!
//! ```text
//! cargo run --release -p lilac-bench --bin soak -- --iterations 500 --faults 1
//! ```
//!
//! Flags:
//!
//! * `--iterations N` — check requests to push through one persistent
//!   service (default 200)
//! * `--seed S` — base seed for the interleaved fuzz-synthesized programs
//!   (default 0)
//! * `--faults SEED` — run under the seeded fault-injection schedule
//! * `--json` — print the report as a single JSON object (the nightly CI
//!   soak job uploads this as its artifact)
//!
//! Exits non-zero only on a verdict disagreement or an unrecovered unit —
//! both panic inside [`lilac_bench::soak`].

use lilac_bench::soak;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut iterations = 200u64;
    let mut seed = 0u64;
    let mut faults = None;
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
                .and_then(|v| v.parse::<u64>().map_err(|e| format!("{name}: {e}")))
        };
        let parsed = match arg.as_str() {
            "--iterations" => value("--iterations").map(|v| iterations = v),
            "--seed" => value("--seed").map(|v| seed = v),
            "--faults" => value("--faults").map(|v| faults = Some(v)),
            "--json" => {
                json = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("usage: soak [--iterations N] [--seed S] [--faults SEED] [--json]");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }

    let report = soak(iterations, seed, faults);
    if json {
        println!("{}", report.to_json());
        return ExitCode::SUCCESS;
    }
    println!(
        "soak: {} iterations in {:.1?} ({} accepted, {} rejected)",
        report.iterations, report.elapsed, report.accepted, report.rejected
    );
    println!(
        "  latency: p50 {:?}  p99 {:?}  mean {:?}  max {:?}",
        report.p50, report.p99, report.mean, report.max
    );
    println!(
        "  faults:  {} injected -> {} panics caught, {} deadline expiries, {} budget exhaustions",
        report.faults_injected,
        report.stats.panics_caught,
        report.stats.deadline_expiries,
        report.stats.budget_exhaustions
    );
    println!(
        "  ladder:  {} retries, {} degraded unit(s), {} failed unit(s)",
        report.stats.retries, report.stats.degraded_units, report.stats.failed_units
    );
    ExitCode::SUCCESS
}
