//! Regenerates Figure 13: resource usage and maximum frequency of the
//! Gaussian blur pyramid implementations, plus the register-retimed
//! frequency of each point (`lilac_opt::retime` — identical latency,
//! rebalanced pipeline stages).

fn main() {
    let rows = lilac_bench::figure13().expect("figure 13 harness");
    println!("Figure 13: GBP resource usage and maximum frequency (Lilac / RV)");
    println!(
        "{:<12} {:>15} {:>17} {:>17} {:>19}",
        "Design (N)", "LUTs", "Registers", "Freq. (MHz)", "Retimed (MHz)"
    );
    for row in &rows {
        println!(
            "{:<12} {:>15} {:>17} {:>17} {:>19}",
            format!("Lilac/RV ({})", row.n),
            format!("{} / {}", row.lilac.luts, row.ready_valid.luts),
            format!("{} / {}", row.lilac.registers, row.ready_valid.registers),
            format!("{:.0} / {:.0}", row.lilac.fmax_mhz, row.ready_valid.fmax_mhz),
            format!("{:.0} / {:.0}", row.lilac_retimed.fmax_mhz, row.ready_valid_retimed.fmax_mhz),
        );
    }
    let s = lilac_bench::summarize_figure13(&rows);
    println!(
        "\nGeometric means: LI uses {:+.1}% LUTs, {:+.1}% registers, {:+.1}% frequency vs Lilac.",
        s.li_lut_overhead_pct, s.li_register_overhead_pct, s.li_fmax_delta_pct
    );
    println!("Paper (Vivado): +26.2% LUTs, +33.0% registers, -6.8% frequency.");
    println!(
        "Retimed points preserve every output latency exactly (asserted by `cargo test -p \
         lilac-bench`; `figure8 --check` gates the bundled paper netlists the same way);"
    );
    println!("see EXPERIMENTS.md \"Register retiming\" for which points move and why.");
}
