//! Regenerates Figure 8: type-checker performance on the bundled designs.

fn main() {
    let rows = lilac_bench::figure8().expect("figure 8 harness");
    println!("Figure 8: Type checker performance");
    println!(
        "{:<30} {:>7} {:>10} {:>12} {:>13} {:>12}",
        "Design", "Lines", "Time (ms)", "Obligations", "Paper lines", "Paper (ms)"
    );
    for row in rows {
        println!(
            "{:<30} {:>7} {:>10.1} {:>12} {:>13} {:>12}",
            row.design.name(),
            row.lines,
            row.check_time.as_secs_f64() * 1000.0,
            row.obligations,
            row.paper_lines.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
            row.paper_time_ms.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nNote: the bundled designs are smaller than the paper's (the reproduction");
    println!("captures each design's structure, not its full line count), so times are");
    println!("expected to be correspondingly lower; all designs check in well under a second.");
}
