//! Regenerates Figure 8: type-checker performance on the bundled designs,
//! with the solver-effort columns behind each number.
//!
//! `--json <path>` additionally writes the machine-readable
//! `BENCH_figure8.json` run report (used by the CI timing smoke job): the
//! Figure 8 check times plus per-netlist optimizer node counts, retiming
//! fmax deltas, incremental re-checking hit rates, and per-target
//! static-analysis lint counts — one diffable JSON document per run, so
//! perf trajectories are comparable across PRs.
//!
//! `--check` validates that the run actually measured something — every
//! design must have discharged obligations through real solver queries and
//! the query cache must have carried weight somewhere — that the netlist
//! optimizer (`lilac-opt`) never *increases* the node count on any bundled
//! design netlist, and that the register retimer (`lilac_opt::retime`)
//! never grows a bundled design's estimated critical path or changes any
//! output's latency; it exits non-zero otherwise. CI uses this to fail
//! instead of silently uploading an artifact full of zeros (or shipping an
//! optimizer that pessimizes).

/// `--check`: fail loudly when the benchmark silently measured nothing.
fn check_rows(rows: &[lilac_bench::Figure8Row]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("no Figure 8 rows were produced".to_string());
    }
    for row in rows {
        if row.obligations == 0 {
            return Err(format!("{}: zero obligations discharged", row.design.name()));
        }
        if row.solver.queries == 0 {
            return Err(format!("{}: zero solver queries issued", row.design.name()));
        }
    }
    let hits: usize = rows.iter().map(|r| r.solver.cache_hits).sum();
    let queries: usize = rows.iter().map(|r| r.solver.queries).sum();
    let hit_rate = hits as f64 / queries as f64;
    if hit_rate <= 0.0 {
        return Err(format!(
            "aggregate cache hit rate is zero ({hits}/{queries} queries) — the query cache is \
             not engaging"
        ));
    }
    Ok(())
}

/// `--check`: the optimizer must never increase the node count on any
/// bundled design netlist.
fn check_optimizer() -> Result<(), String> {
    let netlists = lilac_bench::paper_netlists().map_err(|e| e.to_string())?;
    for (name, netlist) in &netlists {
        let (_, stats) = lilac_opt::optimize_with_stats(netlist);
        if stats.nodes_after > stats.nodes_before {
            return Err(format!(
                "{name}: optimizer increased node count {} -> {}",
                stats.nodes_before, stats.nodes_after
            ));
        }
        println!(
            "check: opt/{name}: {} -> {} nodes ({:.1}% reduction)",
            stats.nodes_before,
            stats.nodes_after,
            stats.node_reduction() * 100.0
        );
    }
    Ok(())
}

/// `--check`: the retimer must never grow a bundled design's estimated
/// critical path and must never change any output's input-to-output
/// register latency — a retiming regression on either axis fails the
/// build. (The retimed Figure 13 points additionally need real fmax wins,
/// asserted by `cargo test -p lilac-bench`.)
fn check_retiming() -> Result<(), String> {
    let rows = lilac_bench::retiming_report(1).map_err(|e| e.to_string())?;
    for row in &rows {
        if row.stats.critical_path_after_ns > row.stats.critical_path_before_ns + 1e-9 {
            return Err(format!(
                "{}: retiming grew the estimated critical path {:.3} -> {:.3} ns",
                row.design, row.stats.critical_path_before_ns, row.stats.critical_path_after_ns
            ));
        }
        if !row.latency_preserved {
            return Err(format!("{}: retiming changed a per-output latency", row.design));
        }
        println!(
            "check: retime/{}: {} move(s), cp {:.2} -> {:.2} ns (fmax {:+.1}%), latency preserved",
            row.design,
            row.stats.moves(),
            row.stats.critical_path_before_ns,
            row.stats.critical_path_after_ns,
            row.stats.fmax_gain_pct()
        );
    }
    Ok(())
}

fn main() {
    let rows = lilac_bench::figure8().expect("figure 8 harness");
    println!("Figure 8: Type checker performance");
    println!(
        "{:<30} {:>7} {:>10} {:>12} {:>8} {:>7} {:>9} {:>7} {:>6} {:>13} {:>12}",
        "Design",
        "Lines",
        "Time (ms)",
        "Obligations",
        "Queries",
        "Hits",
        "Hit-rate",
        "Cubes",
        "Lints",
        "Paper lines",
        "Paper (ms)"
    );
    for row in &rows {
        println!(
            "{:<30} {:>7} {:>10.1} {:>12} {:>8} {:>7} {:>8.0}% {:>7} {:>6} {:>13} {:>12}",
            row.design.name(),
            row.lines,
            row.check_time.as_secs_f64() * 1000.0,
            row.obligations,
            row.solver.queries,
            row.solver.cache_hits,
            row.solver.cache_hit_rate() * 100.0,
            row.solver.cubes,
            row.lints,
            row.paper_lines.map_or_else(|| "-".into(), |l| l.to_string()),
            row.paper_time_ms.map_or_else(|| "-".into(), |t| t.to_string()),
        );
    }
    println!("\nNote: the bundled designs are smaller than the paper's (the reproduction");
    println!("captures each design's structure, not its full line count), so times are");
    println!("expected to be correspondingly lower; all designs check in well under a second.");
    println!("Queries/hits/cubes describe the optimized solver pipeline's effort; see");
    println!("EXPERIMENTS.md for the optimized-vs-naive A/B.");

    let mut args = std::env::args().skip(1);
    let mut check = false;
    while let Some(arg) = args.next() {
        if arg == "--json" {
            let path = args.next().unwrap_or_else(|| "BENCH_figure8.json".to_string());
            let report = lilac_bench::run_report(rows.clone()).expect("run report");
            std::fs::write(&path, lilac_bench::run_report_json(&report))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!(
                "\nwrote {path} ({} figure8 rows, {} netlists, {} retiming rows, {} incremental rows, {} lint targets, campaign {} cases/{} shards)",
                report.figure8.len(),
                report.netlists.len(),
                report.retiming.len(),
                report.incremental.len(),
                report.lints.len(),
                report.campaign.cases,
                report.campaign.shards
            );
        } else if arg == "--check" {
            check = true;
        }
    }
    if check {
        match check_rows(&rows).and_then(|()| check_optimizer()).and_then(|()| check_retiming()) {
            Ok(()) => println!(
                "check: all designs issued queries, the cache engaged, the optimizer never grew \
                 a netlist, and the retimer never grew a critical path or moved a latency"
            ),
            Err(e) => {
                eprintln!("check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
