//! The benchmark harness: regenerates every table and figure of the paper's
//! evaluation from the reproduction's own substrate.
//!
//! Each experiment has a library function returning structured rows (used by
//! the integration tests and the self-contained bench harness in
//! `benches/paper.rs`) and a binary that prints the table:
//!
//! | Exhibit | Function | Binary |
//! |---|---|---|
//! | Table 1 — LS vs LI FPU resources | [`table1`] | `cargo run -p lilac-bench --bin table1` |
//! | Table 2 — when timing is known | [`table2`] | `cargo run -p lilac-bench --bin table2` |
//! | Table 3 — generators and features | [`table3`] | `cargo run -p lilac-bench --bin table3` |
//! | Figure 8 — compiler performance | [`figure8`] | `cargo run -p lilac-bench --bin figure8` |
//! | Figure 13 — GBP LA vs LI | [`figure13`] | `cargo run -p lilac-bench --bin figure13` |
//!
//! Absolute LUT/register/frequency numbers come from `lilac-synth`'s analytic
//! model rather than a Vivado run, so they are not expected to match the
//! paper's numbers; the relationships the paper argues for (who wins, by
//! roughly what factor, and how the gap moves across design points) are what
//! `EXPERIMENTS.md` compares.

pub mod json;

use lilac_core::{
    check_program, check_program_with, CheckOptions, CheckReport, GeneratorFeature, InterfaceStyle,
};
use lilac_designs::Design;
use lilac_elab::{elaborate_module, ElabConfig};
use lilac_gen::{GenGoals, GenRequest, Generator, GeneratorRegistry};
use lilac_li::{fpu, gbp};
use lilac_solver::{SharedCache, SolverStats};
use lilac_synth::{estimate, ResourceEstimate};
use lilac_util::diag::Result;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1: an FPU implementation style at one FloPoCo
/// configuration.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// `"LI"` or `"LS"`.
    pub style: &'static str,
    /// FloPoCo adder latency.
    pub adder_latency: u32,
    /// FloPoCo multiplier latency.
    pub multiplier_latency: u32,
    /// Resource estimate.
    pub cost: ResourceEstimate,
}

/// Regenerates Table 1: latency-sensitive vs latency-insensitive FPU
/// implementations at the two FloPoCo configurations the paper reports
/// (adder/multiplier latencies 1/1 and 4/2).
///
/// The LS rows come from elaborating the *Lilac* FPU (`lilac-designs`) with
/// FloPoCo goals that produce the corresponding latencies; the LI rows wrap
/// the same cores in ready–valid handshakes (`lilac-li`).
///
/// # Errors
///
/// Propagates parse/type-check/elaboration errors (none expected).
pub fn table1() -> Result<Vec<Table1Row>> {
    let program = Design::Fpu.program()?;
    check_program(&program)?;
    let mut rows = Vec::new();
    for (target_mhz, expect_a, expect_m) in [(100u32, 1u32, 1u32), (280, 4, 2)] {
        let mut registry = GeneratorRegistry::with_builtin_tools();
        registry.set_default_goals(GenGoals { target_mhz, ..GenGoals::default() });
        let module = elaborate_module(
            &program,
            "FPU",
            &BTreeMap::from([("W".to_string(), 32)]),
            &ElabConfig::with_registry(registry),
        )?;
        let ls_cost = estimate(&module.netlist);
        let li_cost = estimate(&fpu::li_fpu(32, expect_a, expect_m));
        rows.push(Table1Row {
            style: "LI",
            adder_latency: expect_a,
            multiplier_latency: expect_m,
            cost: li_cost,
        });
        rows.push(Table1Row {
            style: "LS",
            adder_latency: expect_a,
            multiplier_latency: expect_m,
            cost: ls_cost,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Interface style.
    pub style: InterfaceStyle,
    /// Whether timing is known at design / compile / execute time.
    pub known: (bool, bool, bool),
}

/// Regenerates Table 2: when each interface style's timing behaviour is
/// known.
pub fn table2() -> Vec<Table2Row> {
    InterfaceStyle::all()
        .into_iter()
        .map(|style| {
            let k = style.timing_knowledge();
            Table2Row { style, known: (k.at_design_time, k.at_compile_time, k.at_execute_time) }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// One row of Table 3: a generator and the Lilac features its interfaces
/// need.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Generator name as the paper lists it.
    pub generator: &'static str,
    /// Features the generator model declares.
    pub features: Vec<GeneratorFeature>,
}

/// Regenerates Table 3 from the generator models' own feature declarations.
pub fn table3() -> Vec<Table3Row> {
    let tools: Vec<(&'static str, Box<dyn Generator>)> = vec![
        ("PipelineC", Box::new(lilac_gen::tools::PipelineC)),
        ("FloPoCo", Box::new(lilac_gen::tools::FloPoCo)),
        ("XLS", Box::new(lilac_gen::tools::Xls)),
        ("Spiral FFT", Box::new(lilac_gen::tools::SpiralFft)),
        ("Aetherling", Box::new(lilac_gen::tools::Aetherling)),
    ];
    tools
        .into_iter()
        .map(|(name, tool)| Table3Row { generator: name, features: tool.features() })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// One row of Figure 8: a bundled design, its size, and its type-check time.
#[derive(Clone, Debug)]
pub struct Figure8Row {
    /// Design.
    pub design: Design,
    /// Lines of Lilac source (including the standard library).
    pub lines: usize,
    /// Measured type-check time.
    pub check_time: Duration,
    /// Number of solver obligations discharged.
    pub obligations: usize,
    /// Solver effort behind the obligations: queries, cache hits/misses,
    /// cubes, facts sliced away. `solver.cache_hit_rate()` gives the hit
    /// rate the optimized pipeline achieved on this design.
    pub solver: SolverStats,
    /// The paper's reported line count, if this row appears in Figure 8.
    pub paper_lines: Option<usize>,
    /// The paper's reported time in milliseconds, if reported.
    pub paper_time_ms: Option<u64>,
    /// Static-analysis lints on the design's representative top netlist
    /// (attached to the check report's matching `ComponentReport`).
    pub lints: usize,
}

/// Regenerates Figure 8: type-checker performance on the bundled designs
/// (the default sliced + cached + parallel pipeline).
///
/// # Errors
///
/// Propagates parse or type-check errors (none expected).
pub fn figure8() -> Result<Vec<Figure8Row>> {
    figure8_with(&CheckOptions::default())
}

/// Figure 8 under explicit [`CheckOptions`] (the naive baseline uses
/// [`CheckOptions::naive`]).
///
/// # Errors
///
/// See [`figure8`].
pub fn figure8_with(options: &CheckOptions) -> Result<Vec<Figure8Row>> {
    let mut rows = Vec::new();
    for design in Design::all() {
        let program = design.program()?;
        let mut report = check_program_with(&program, options)?;
        // Surface the static analyzer's netlist lints on the design's
        // representative top through the component report.
        let lints = lilac_fuzz::lint::attach_design_lints(design, &mut report)
            .map_err(lilac_util::diag::LilacError::msg)?;
        rows.push(Figure8Row {
            design,
            lines: design.line_count(),
            check_time: report.total_elapsed(),
            obligations: report.total_obligations(),
            solver: report.solver_stats(),
            paper_lines: design.paper_lines(),
            paper_time_ms: design.paper_time_ms(),
            lints,
        });
    }
    Ok(rows)
}

/// Serializes Figure 8 rows (plus the machine-readable solver stats) as a
/// JSON document. Superseded by [`run_report_json`] for the CI artifact
/// (which embeds the same rows as its `figure8` section) but kept for
/// callers that only want the check-time table.
pub fn figure8_json(rows: &[Figure8Row]) -> String {
    let mut out = String::from("{\n");
    figure8_json_section(&mut out, rows);
    out.push_str("}\n");
    out
}

/// Appends the `"figure8": [...]` section (no trailing comma) to `out`.
fn figure8_json_section(out: &mut String, rows: &[Figure8Row]) {
    out.push_str("  \"figure8\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let s = &row.solver;
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"lines\": {}, \"check_time_us\": {}, \"obligations\": {}, \
             \"queries\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.3}, \
             \"cubes\": {}, \"facts_sliced_out\": {}, \"eq_guard_bailouts\": {}, \"lints\": {}}}{}\n",
            row.design.name().replace('"', "'"),
            row.lines,
            row.check_time.as_micros(),
            row.obligations,
            s.queries,
            s.cache_hits,
            s.cache_misses,
            s.cache_hit_rate(),
            s.cubes,
            s.facts_sliced_out,
            s.eq_guard_bailouts,
            row.lints,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n");
}

// ---------------------------------------------------------------------------
// Whole-run BENCH report (the machine-readable per-PR perf trajectory)
// ---------------------------------------------------------------------------

/// One row of the incremental re-checking exhibit: a bundled design checked
/// cold (empty [`PriorReports`](lilac_core::PriorReports)) and then warm
/// (the identical program re-submitted to the same store), with the content
/// hash replaying every clean component verdict on the warm pass.
#[derive(Clone, Debug)]
pub struct IncrementalRow {
    /// Design.
    pub design: Design,
    /// Components the design checks (including the bundled stdlib).
    pub components: usize,
    /// Wall-clock time of the cold check (every component misses).
    pub cold_time: Duration,
    /// Wall-clock time of the warm re-check.
    pub warm_time: Duration,
    /// Components replayed from the store on the warm pass.
    pub warm_hits: usize,
    /// Components re-checked on the warm pass (diagnostics-bearing verdicts
    /// are never cached, so a design with warnings keeps a nonzero floor).
    pub warm_misses: usize,
}

impl IncrementalRow {
    /// Warm-pass report-cache hit rate, in `[0, 1]`.
    pub fn warm_hit_rate(&self) -> f64 {
        self.warm_hits as f64 / ((self.warm_hits + self.warm_misses) as f64).max(1.0)
    }
}

/// Measures content-addressed incremental re-checking
/// ([`lilac_core::check_program_incremental`]) on every bundled design:
/// one cold check to populate the verdict store, one warm re-check of the
/// same program to measure the replay.
///
/// # Errors
///
/// Propagates parse or type-check errors (none expected).
pub fn incremental_report() -> Result<Vec<IncrementalRow>> {
    let options = CheckOptions::default();
    let mut rows = Vec::new();
    for design in Design::all() {
        let program = design.program()?;
        let mut prior = lilac_core::PriorReports::new();
        let start = Instant::now();
        let cold = lilac_core::check_program_incremental(&program, &options, &mut prior)?;
        let cold_time = start.elapsed();
        let start = Instant::now();
        let warm = lilac_core::check_program_incremental(&program, &options, &mut prior)?;
        let warm_time = start.elapsed();
        rows.push(IncrementalRow {
            design,
            components: cold.hits + cold.misses,
            cold_time,
            warm_time,
            warm_hits: warm.hits,
            warm_misses: warm.misses,
        });
    }
    Ok(rows)
}

/// One row of the static-analysis lint exhibit: a target of the canonical
/// lint surface (`lilac_fuzz::lint::targets`) with its findings bucketed
/// by severity. The same surface CI's lint-smoke step diffs against the
/// golden baseline, summarized per target for the trajectory artifact.
#[derive(Clone, Debug)]
pub struct LintRow {
    /// Stable target name (baseline key).
    pub target: String,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Note-severity findings.
    pub notes: usize,
}

/// Runs the static analyzer's lint pass over the canonical surface —
/// bundled designs, LA/LI wrapper glue, pinned corpus — and summarizes
/// each target's findings by severity.
///
/// # Errors
///
/// Propagates elaboration or analysis errors from the lint surface (none
/// expected on a clean tree).
pub fn lint_rows() -> Result<Vec<LintRow>> {
    let targets = lilac_fuzz::lint::targets().map_err(lilac_util::diag::LilacError::msg)?;
    let mut rows = Vec::new();
    for target in &targets {
        let lints =
            lilac_fuzz::lint::lint_target(target).map_err(lilac_util::diag::LilacError::msg)?;
        rows.push(LintRow {
            target: target.name.clone(),
            warnings: lints
                .iter()
                .filter(|l| l.severity == lilac_util::diag::DiagnosticKind::Warning)
                .count(),
            notes: lints
                .iter()
                .filter(|l| l.severity == lilac_util::diag::DiagnosticKind::Note)
                .count(),
        });
    }
    Ok(rows)
}

/// Everything one benchmark run measures, in machine-readable form: the
/// per-PR perf trajectory CI serializes to `BENCH_figure8.json` via
/// [`run_report_json`]. Check-time comes from the Figure 8 rows, node
/// counts from the optimizer, fmax from the retimer's timing model, the
/// incremental hit-rate from the content-addressed re-checker, and the
/// lint counts from the static known-bits/interval analysis.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Figure 8: per-design type-check time and solver effort.
    pub figure8: Vec<Figure8Row>,
    /// Per-netlist optimizer node counts (no simulation timing — the cheap
    /// stats-only pass, suitable for every CI run).
    pub netlists: Vec<(&'static str, lilac_opt::OptStats)>,
    /// Per-netlist retiming fmax deltas.
    pub retiming: Vec<RetimeRow>,
    /// Per-design incremental re-checking hit rates.
    pub incremental: Vec<IncrementalRow>,
    /// Per-target static-analysis lint counts over the canonical surface.
    pub lints: Vec<LintRow>,
    /// Sharded-campaign throughput, signature histogram, and distilled size.
    pub campaign: CampaignBench,
}

/// Assembles a [`RunReport`] around already-measured Figure 8 rows (so the
/// `figure8` binary measures the check times exactly once).
///
/// # Errors
///
/// Propagates parse/type-check/elaboration errors (none expected).
pub fn run_report(figure8: Vec<Figure8Row>) -> Result<RunReport> {
    let netlists = paper_netlists()?
        .iter()
        .map(|(name, netlist)| (*name, lilac_opt::optimize_with_stats(netlist).1))
        .collect();
    Ok(RunReport {
        figure8,
        netlists,
        retiming: retiming_report(1)?,
        incremental: incremental_report()?,
        lints: lint_rows()?,
        // Small fixed budget: big enough for a meaningful signature
        // histogram and per-shard cases/s, small enough for every CI run.
        campaign: campaign_bench(120, 0, 2),
    })
}

/// Serializes a [`RunReport`] as the `BENCH_*.json` artifact: one JSON
/// document with `figure8`, `netlists`, `retiming`, `incremental`, `lints`,
/// and `campaign` sections, stable field names, and times in integer
/// microseconds — so per-PR trajectories diff cleanly.
pub fn run_report_json(report: &RunReport) -> String {
    let mut out = String::from("{\n  \"schema\": \"lilac-bench-run/v1\",\n");
    figure8_json_section(&mut out, &report.figure8);
    out.push_str(",\n  \"netlists\": [\n");
    for (i, (name, s)) in report.netlists.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"netlist\": \"{}\", \"nodes_before\": {}, \"nodes_after\": {}, \
             \"node_reduction\": {:.3}, \"sequential_before\": {}, \"sequential_after\": {}}}{}\n",
            name.replace('"', "'"),
            s.nodes_before,
            s.nodes_after,
            s.node_reduction(),
            s.sequential_before,
            s.sequential_after,
            if i + 1 == report.netlists.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"retiming\": [\n");
    for (i, row) in report.retiming.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"netlist\": \"{}\", \"fmax_before_mhz\": {:.3}, \"fmax_after_mhz\": {:.3}, \
             \"fmax_gain_pct\": {:.3}, \"moves\": {}, \"latency_preserved\": {}}}{}\n",
            row.design.replace('"', "'"),
            row.fmax_before_mhz,
            row.fmax_after_mhz,
            row.stats.fmax_gain_pct(),
            row.stats.moves(),
            row.latency_preserved,
            if i + 1 == report.retiming.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"incremental\": [\n");
    for (i, row) in report.incremental.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"components\": {}, \"cold_check_us\": {}, \
             \"warm_check_us\": {}, \"warm_hits\": {}, \"warm_misses\": {}, \
             \"warm_hit_rate\": {:.3}}}{}\n",
            row.design.name().replace('"', "'"),
            row.components,
            row.cold_time.as_micros(),
            row.warm_time.as_micros(),
            row.warm_hits,
            row.warm_misses,
            row.warm_hit_rate(),
            if i + 1 == report.incremental.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"lints\": [\n");
    for (i, row) in report.lints.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"target\": \"{}\", \"warnings\": {}, \"notes\": {}}}{}\n",
            row.target.replace('"', "'"),
            row.warnings,
            row.notes,
            if i + 1 == report.lints.len() { "" } else { "," },
        ));
    }
    let c = &report.campaign;
    out.push_str("  ],\n  \"campaign\": {\n");
    out.push_str(&format!(
        "    \"cases\": {}, \"seed\": {}, \"shards\": {}, \"elapsed_us\": {}, \
         \"cases_per_sec\": {:.3}, \"fingerprint\": \"{:016x}\", \"distilled_cases\": {},\n",
        c.cases,
        c.seed,
        c.shards,
        c.elapsed.as_micros(),
        c.cases_per_sec,
        c.fingerprint,
        c.distilled,
    ));
    out.push_str("    \"shard_rows\": [\n");
    for (i, s) in c.shard_rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"shard\": {}, \"start\": {}, \"cases\": {}, \"elapsed_us\": {}, \
             \"cases_per_sec\": {:.3}}}{}\n",
            s.shard,
            s.start,
            s.cases,
            (s.elapsed_secs * 1e6) as u64,
            s.cases_per_sec,
            if i + 1 == c.shard_rows.len() { "" } else { "," },
        ));
    }
    out.push_str("    ],\n    \"signatures\": [\n");
    for (i, (sig, count)) in c.signatures.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"signature\": \"{sig}\", \"cases\": {count}, \"bits\": \"{}\"}}{}\n",
            sig.describe(),
            if i + 1 == c.signatures.len() { "" } else { "," },
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Solver speedup A/B (the exhibit behind the obligation-discharge rework)
// ---------------------------------------------------------------------------

/// A/B timing of one design: the optimized obligation-discharge pipeline
/// (relevance slicing + alpha-invariant query cache + indexed scopes, with a
/// persistent [`SharedCache`] across designs) against the naive baseline
/// (no slicing, no caching, serial, cloned fact snapshots).
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Design.
    pub design: Design,
    /// Optimized pipeline with the persistent shared cache warm.
    pub fast: Duration,
    /// Optimized pipeline with per-program caches only (first-run cost).
    pub cold: Duration,
    /// The naive baseline.
    pub naive: Duration,
    /// `naive / fast`.
    pub speedup: f64,
    /// `naive / cold`.
    pub cold_speedup: f64,
    /// Query-cache hit rate of the optimized run.
    pub cache_hit_rate: f64,
}

/// Aggregate of [`solver_speedup`].
#[derive(Clone, Debug)]
pub struct SpeedupSummary {
    /// Sum of per-design optimized (warm) times.
    pub fast_total: Duration,
    /// Sum of per-design optimized (cold) times.
    pub cold_total: Duration,
    /// Sum of per-design naive times.
    pub naive_total: Duration,
    /// `naive_total / fast_total`.
    pub speedup: f64,
    /// `naive_total / cold_total`.
    pub cold_speedup: f64,
}

/// Measures `check_program` over [`Design::all`] in the three
/// configurations (taking the minimum of `reps` runs each, interleaved, to
/// shed scheduler noise) and verifies on the way that the optimized and
/// naive pipelines produce equivalent reports.
///
/// # Errors
///
/// Propagates parse or type-check errors (none expected).
///
/// # Panics
///
/// Panics if the optimized pipeline changes any check outcome relative to
/// the naive baseline (that would be a solver bug, not a measurement).
pub fn solver_speedup(reps: usize) -> Result<(Vec<SpeedupRow>, SpeedupSummary)> {
    let reps = reps.max(1);
    let naive_opts = CheckOptions::naive();
    let cold_opts = CheckOptions::default();
    let shared = SharedCache::new();
    let mut warm_opts = CheckOptions::default();
    warm_opts.solver_config.shared_cache = Some(shared);

    let programs: Vec<_> =
        Design::all().into_iter().map(|d| d.program().map(|p| (d, p))).collect::<Result<_>>()?;
    // Warm pass: populates the shared cache and verifies A/B equivalence.
    for (_, program) in &programs {
        let fast_report = check_program_with(program, &warm_opts)?;
        let naive_report = check_program_with(program, &naive_opts)?;
        assert!(
            reports_equivalent(&fast_report, &naive_report),
            "optimized pipeline changed check outcomes"
        );
    }

    let measure = |opts: &CheckOptions, program: &lilac_ast::ast::Program| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let start = Instant::now();
            let _ = check_program_with(program, opts).expect("design checks");
            best = best.min(start.elapsed());
        }
        best
    };

    let mut rows = Vec::new();
    let mut fast_total = Duration::ZERO;
    let mut cold_total = Duration::ZERO;
    let mut naive_total = Duration::ZERO;
    for (design, program) in &programs {
        let fast = measure(&warm_opts, program);
        let cold = measure(&cold_opts, program);
        let naive = measure(&naive_opts, program);
        let report = check_program_with(program, &warm_opts)?;
        fast_total += fast;
        cold_total += cold;
        naive_total += naive;
        rows.push(SpeedupRow {
            design: *design,
            fast,
            cold,
            naive,
            speedup: naive.as_secs_f64() / fast.as_secs_f64(),
            cold_speedup: naive.as_secs_f64() / cold.as_secs_f64(),
            cache_hit_rate: report.solver_stats().cache_hit_rate(),
        });
    }
    let summary = SpeedupSummary {
        fast_total,
        cold_total,
        naive_total,
        speedup: naive_total.as_secs_f64() / fast_total.as_secs_f64(),
        cold_speedup: naive_total.as_secs_f64() / cold_total.as_secs_f64(),
    };
    Ok((rows, summary))
}

/// True when two check reports agree on everything the user can observe.
/// Delegates to [`CheckReport::equivalent`] (kept as a free function for the
/// existing bench/test callers).
pub fn reports_equivalent(a: &CheckReport, b: &CheckReport) -> bool {
    a.equivalent(b)
}

// ---------------------------------------------------------------------------
// Fuzz throughput (the differential-testing subsystem as a benchmark row)
// ---------------------------------------------------------------------------

/// Throughput of the `lilac-fuzz` differential pipeline: how many complete
/// generate → synthesize → check×4 → elaborate → optimize → retime →
/// simulate×8 (plus a 64-lane compiled batch) cases the
/// harness clears per second. This is the row that tells us whether a
/// solver or checker change made the *fuzzing CI budget* cheaper or more
/// expensive, alongside the per-design Figure 8 timings.
#[derive(Clone, Debug)]
pub struct FuzzThroughputRow {
    /// Cases run.
    pub cases: u64,
    /// Cases that type-checked (clean generations).
    pub checked: u64,
    /// Sabotaged cases correctly rejected.
    pub rejected: u64,
    /// Total obligations discharged across all cases.
    pub obligations: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// `cases / elapsed`.
    pub cases_per_sec: f64,
    /// Deterministic outcome digest (must be identical run to run).
    pub fingerprint: u64,
}

/// Runs the fuzzer for a fixed budget and reports throughput.
///
/// # Panics
///
/// Panics if any oracle disagrees — a benchmark run is also a correctness
/// run (the fuzzer's whole point is that every future solver optimization
/// gets this regression oracle for free).
pub fn fuzz_throughput(cases: u64, seed: u64) -> FuzzThroughputRow {
    let config = lilac_fuzz::FuzzConfig { cases, seed, ..lilac_fuzz::FuzzConfig::default() };
    let start = Instant::now();
    let summary = lilac_fuzz::run_fuzz(&config);
    let elapsed = start.elapsed();
    assert!(
        summary.failures.is_empty(),
        "fuzz oracles disagreed during the benchmark: {:#?}",
        summary.failures
    );
    FuzzThroughputRow {
        cases: summary.cases,
        checked: summary.checked_ok,
        rejected: summary.rejected,
        obligations: summary.obligations,
        elapsed,
        cases_per_sec: summary.cases as f64 / elapsed.as_secs_f64().max(1e-9),
        fingerprint: summary.fingerprint,
    }
}

/// The sharded campaign as a benchmark row: whole-run and per-shard
/// throughput, the coverage-signature histogram, and the distilled-corpus
/// size — the `BENCH_*.json` section that tells us whether sharding is
/// actually converting the compiled simulator's and incremental checker's
/// wins into whole-run fuzz throughput.
#[derive(Clone, Debug)]
pub struct CampaignBench {
    /// Cases run.
    pub cases: u64,
    /// Base seed.
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Wall-clock time for the whole campaign (merge included).
    pub elapsed: Duration,
    /// `cases / elapsed`.
    pub cases_per_sec: f64,
    /// Merged fingerprint (byte-identical to the sequential driver's).
    pub fingerprint: u64,
    /// Per-shard throughput rows.
    pub shard_rows: Vec<lilac_fuzz::campaign::ShardReport>,
    /// Coverage-signature histogram (signature → cases), in signature order.
    pub signatures: Vec<(lilac_fuzz::CoverageSignature, u64)>,
    /// Size of the distilled corpus (one case per distinct signature).
    pub distilled: usize,
}

/// Runs a sharded fuzzing campaign for a fixed budget and reports
/// throughput, the signature histogram, and the distilled-corpus size.
///
/// # Panics
///
/// Panics if any oracle disagrees — like [`fuzz_throughput`], a benchmark
/// run is also a correctness run.
pub fn campaign_bench(cases: u64, seed: u64, shards: usize) -> CampaignBench {
    let config = lilac_fuzz::campaign::CampaignConfig {
        fuzz: lilac_fuzz::FuzzConfig { cases, seed, ..lilac_fuzz::FuzzConfig::default() },
        shards,
    };
    let start = Instant::now();
    let result = lilac_fuzz::campaign::run_campaign(&config);
    let elapsed = start.elapsed();
    assert!(
        result.summary.failures.is_empty(),
        "fuzz oracles disagreed during the campaign benchmark: {:#?}",
        result.summary.failures
    );
    CampaignBench {
        cases: result.summary.cases,
        seed,
        shards,
        elapsed,
        cases_per_sec: result.summary.cases as f64 / elapsed.as_secs_f64().max(1e-9),
        fingerprint: result.summary.fingerprint,
        shard_rows: result.shards,
        signatures: result.summary.signatures.iter().map(|(&sig, &n)| (sig, n)).collect(),
        distilled: result.distilled.len(),
    }
}

// ---------------------------------------------------------------------------
// The netlist optimizer (lilac-opt) on the paper designs
// ---------------------------------------------------------------------------

/// One row of the optimizer exhibit: a bundled paper design's netlist
/// before/after `lilac_opt::optimize`, the optimizer's runtime, and the
/// simulator-throughput change the reduction buys.
#[derive(Clone, Debug)]
pub struct OptRow {
    /// Design / netlist label.
    pub design: &'static str,
    /// Per-pass statistics (node and sequential counts included).
    pub stats: lilac_opt::OptStats,
    /// Wall-clock time of one `optimize` run (minimum over reps).
    pub opt_time: Duration,
    /// `lilac-sim` time for the measured cycles on the raw netlist.
    pub sim_raw: Duration,
    /// `lilac-sim` time for the same cycles on the optimized netlist.
    pub sim_opt: Duration,
    /// `sim_raw / sim_opt`.
    pub sim_speedup: f64,
}

/// The netlists the optimizer exhibit (and `figure8 --check`) measures: the
/// elaborated paper designs plus the hand-built LA/LI system netlists of
/// Table 1 / Figure 13.
///
/// # Errors
///
/// Propagates parse/type-check/elaboration errors (none expected).
pub fn paper_netlists() -> Result<Vec<(&'static str, lilac_ir::Netlist)>> {
    let fpu = elaborate_module(
        &Design::Fpu.program()?,
        "FPU",
        &BTreeMap::from([("W".to_string(), 32)]),
        &ElabConfig::default(),
    )?;
    let gbp = elaborate_module(
        &Design::Gbp.program()?,
        "Gbp",
        &BTreeMap::from([("W".to_string(), 8)]),
        &ElabConfig::default(),
    )?;
    let la_gbp = gbp::la_gbp_system(&gbp.netlist, 8, 4);
    Ok(vec![
        ("FPU (elaborated, W=32)", fpu.netlist),
        ("GBP (elaborated, W=8)", gbp.netlist),
        ("LA GBP system (N=4)", la_gbp),
        ("LI FPU (4/2)", fpu::li_fpu(32, 4, 2)),
        ("LI GBP (N=4)", gbp::li_gbp(8, 4)),
    ])
}

/// Measures `lilac_opt::optimize` over [`paper_netlists`]: node-count
/// reduction, optimizer runtime, and the simulation-throughput gain on
/// `cycles` simulated cycles (minimum of `reps` interleaved runs each).
///
/// # Errors
///
/// Propagates errors from [`paper_netlists`].
///
/// # Panics
///
/// Panics if an optimized netlist fails to simulate — the same contract the
/// fuzzer's sixth oracle enforces case by case.
pub fn optimizer_report(cycles: usize, reps: usize) -> Result<Vec<OptRow>> {
    let reps = reps.max(1);
    let mut rows = Vec::new();
    for (design, netlist) in paper_netlists()? {
        let (optimized, stats) = lilac_opt::optimize_with_stats(&netlist);
        let mut opt_time = Duration::MAX;
        for _ in 0..reps {
            let start = Instant::now();
            let _ = lilac_opt::optimize(&netlist);
            opt_time = opt_time.min(start.elapsed());
        }
        let measure_sim = |n: &lilac_ir::Netlist| -> Duration {
            let mut best = Duration::MAX;
            for _ in 0..reps {
                let mut sim = lilac_sim::Simulator::new(n).expect("netlist simulates");
                let inputs: Vec<String> = n.inputs.iter().map(|p| p.name.clone()).collect();
                let start = Instant::now();
                for cycle in 0..cycles {
                    for (k, name) in inputs.iter().enumerate() {
                        sim.set_input(name, (cycle as u64).wrapping_mul(7).wrapping_add(k as u64));
                    }
                    sim.step();
                }
                best = best.min(start.elapsed());
            }
            best
        };
        let sim_raw = measure_sim(&netlist);
        let sim_opt = measure_sim(&optimized);
        rows.push(OptRow {
            design,
            stats,
            opt_time,
            sim_raw,
            sim_opt,
            sim_speedup: sim_raw.as_secs_f64() / sim_opt.as_secs_f64().max(1e-12),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Compiled simulation (lilac-sim's tape backend) vs the interpreter
// ---------------------------------------------------------------------------

/// One row of the compiled-simulation exhibit: a bundled paper design
/// driven with the same stimulus by the reference interpreter and by the
/// compiled instruction tape ([`lilac_sim::CompiledSim`]).
#[derive(Clone, Debug)]
pub struct SimBackendRow {
    /// Design / netlist label.
    pub design: &'static str,
    /// Simulated cycles per measured run.
    pub cycles: usize,
    /// Interpreter wall-clock for one vector over `cycles` cycles.
    pub interp: Duration,
    /// Compiled-tape wall-clock for the same drive. All 64 lanes carry the
    /// broadcast vector, so this is the cost of *any* 1..=64-vector batch.
    pub compiled: Duration,
    /// Single-vector speedup: `interp / compiled`.
    pub speedup: f64,
    /// Vector-throughput speedup with all 64 lanes carrying distinct
    /// vectors: `64 * interp / compiled` (the tape's step cost does not
    /// depend on how many lanes differ).
    pub lane_speedup: f64,
}

/// Measures the interpreter against the compiled tape over
/// [`paper_netlists`] (minimum of `reps` interleaved runs each), after
/// first checking on every design that the two backends agree output for
/// output, cycle for cycle — a benchmark run is also a correctness run.
///
/// # Errors
///
/// Propagates errors from [`paper_netlists`].
///
/// # Panics
///
/// Panics if the backends disagree on any output of any design.
pub fn sim_backend_report(cycles: usize, reps: usize) -> Result<Vec<SimBackendRow>> {
    use lilac_sim::SimBackend;
    let reps = reps.max(1);
    let stimulus = |cycle: usize, k: usize| (cycle as u64).wrapping_mul(7).wrapping_add(k as u64);
    fn drive<B: lilac_sim::SimBackend>(
        sim: &mut B,
        inputs: &[String],
        cycles: usize,
        stimulus: &impl Fn(usize, usize) -> u64,
    ) {
        for cycle in 0..cycles {
            for (k, name) in inputs.iter().enumerate() {
                sim.set_input(name, stimulus(cycle, k));
            }
            sim.step();
        }
    }
    let mut rows = Vec::new();
    for (design, netlist) in paper_netlists()? {
        let inputs: Vec<String> = netlist.inputs.iter().map(|p| p.name.clone()).collect();
        // Equivalence first, then the stopwatch.
        let mut interp = lilac_sim::Simulator::new(&netlist).expect("netlist simulates");
        let mut compiled = lilac_sim::CompiledSim::new(&netlist).expect("netlist compiles");
        let outputs = interp.output_names();
        for cycle in 0..64usize {
            for (k, name) in inputs.iter().enumerate() {
                interp.set_input(name, stimulus(cycle, k));
                SimBackend::set_input(&mut compiled, name, stimulus(cycle, k));
            }
            for name in &outputs {
                assert_eq!(
                    interp.peek(name),
                    SimBackend::output(&mut compiled, name),
                    "{design}: backends diverge on `{name}` at cycle {cycle}"
                );
            }
            interp.step();
            SimBackend::step(&mut compiled);
        }
        let mut interp_best = Duration::MAX;
        let mut compiled_best = Duration::MAX;
        for _ in 0..reps {
            let mut sim = lilac_sim::Simulator::new(&netlist).expect("netlist simulates");
            let start = Instant::now();
            drive(&mut sim, &inputs, cycles, &stimulus);
            interp_best = interp_best.min(start.elapsed());
            let mut sim = lilac_sim::CompiledSim::new(&netlist).expect("netlist compiles");
            let start = Instant::now();
            drive(&mut sim, &inputs, cycles, &stimulus);
            compiled_best = compiled_best.min(start.elapsed());
        }
        let speedup = interp_best.as_secs_f64() / compiled_best.as_secs_f64().max(1e-12);
        rows.push(SimBackendRow {
            design,
            cycles,
            interp: interp_best,
            compiled: compiled_best,
            speedup,
            lane_speedup: speedup * lilac_sim::compiled::LANES as f64,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Register retiming (lilac-opt::retime) on the paper designs
// ---------------------------------------------------------------------------

/// One row of the retiming exhibit: a bundled paper design's netlist
/// before/after `lilac_opt::retime`, with the cost model's fmax on both
/// sides and the latency-preservation verdict.
#[derive(Clone, Debug)]
pub struct RetimeRow {
    /// Design / netlist label.
    pub design: &'static str,
    /// Per-run retiming statistics (moves, critical paths, register bits).
    pub stats: lilac_opt::RetimeStats,
    /// Estimated fmax before retiming, MHz.
    pub fmax_before_mhz: f64,
    /// Estimated fmax after retiming, MHz.
    pub fmax_after_mhz: f64,
    /// Whether every output's minimum input-to-output register count is
    /// unchanged (must always be true; recorded so `figure8 --check` and
    /// the tests can assert it from the row).
    pub latency_preserved: bool,
    /// Wall-clock time of one `retime` run (minimum over reps).
    pub retime_time: Duration,
}

/// Measures `lilac_opt::retime` over [`paper_netlists`]: accepted moves,
/// critical-path/fmax deltas, and latency preservation per design.
///
/// # Errors
///
/// Propagates errors from [`paper_netlists`].
///
/// # Panics
///
/// Panics if the retimer violates its own contract — the same panics the
/// fuzzer's seventh oracle converts into shrinkable failures.
pub fn retiming_report(reps: usize) -> Result<Vec<RetimeRow>> {
    let reps = reps.max(1);
    let mut rows = Vec::new();
    for (design, netlist) in paper_netlists()? {
        // The stats-producing run doubles as the first timed rep, so
        // `retiming_report(1)` — the `figure8 --check` path — pays for
        // exactly one retime per design.
        let start = Instant::now();
        let (retimed, stats) = lilac_opt::retime_with_stats(&netlist);
        let mut retime_time = start.elapsed();
        for _ in 1..reps {
            let start = Instant::now();
            let _ = lilac_opt::retime(&netlist);
            retime_time = retime_time.min(start.elapsed());
        }
        rows.push(RetimeRow {
            design,
            stats,
            fmax_before_mhz: 1000.0 / stats.critical_path_before_ns,
            fmax_after_mhz: 1000.0 / stats.critical_path_after_ns,
            latency_preserved: retimed.output_min_latencies() == netlist.output_min_latencies(),
            retime_time,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 13
// ---------------------------------------------------------------------------

/// One design point of Figure 13: the LA (Lilac) and LI (ready–valid)
/// Gaussian blur pyramids at one convolution parallelism, plus the
/// *retimed* variants of both (`lilac_opt::retime` — same latency, higher
/// estimated fmax wherever the pass finds an accepted move).
#[derive(Clone, Debug)]
pub struct Figure13Row {
    /// Aetherling parallelism (the paper's N).
    pub n: u32,
    /// Cost of the latency-abstract implementation (elaborated Lilac design
    /// plus its serializer front-end).
    pub lilac: ResourceEstimate,
    /// Cost of the ready–valid implementation.
    pub ready_valid: ResourceEstimate,
    /// Cost of the retimed latency-abstract implementation.
    pub lilac_retimed: ResourceEstimate,
    /// Cost of the retimed ready–valid implementation.
    pub ready_valid_retimed: ResourceEstimate,
    /// Whether retiming preserved every output's minimum register latency
    /// on both implementations (must always be true).
    pub latency_preserved: bool,
}

/// Regenerates Figure 13: resource usage and maximum frequency of the GBP
/// implementations for N ∈ {1, 2, 4, 8, 16}.
///
/// # Errors
///
/// Propagates parse/type-check/elaboration errors (none expected).
pub fn figure13() -> Result<Vec<Figure13Row>> {
    let program = Design::Gbp.program()?;
    check_program(&program)?;
    let width = 8u32;
    let mut rows = Vec::new();
    for n in [1u32, 2, 4, 8, 16] {
        let mut registry = GeneratorRegistry::with_builtin_tools();
        registry.set_default_knob("aetherling", "multipliers", n as u64);
        let module = elaborate_module(
            &program,
            "Gbp",
            &BTreeMap::from([("W".to_string(), width as u64)]),
            &ElabConfig::with_registry(registry),
        )?;
        let la_system = gbp::la_gbp_system(&module.netlist, width, n);
        let li_system = gbp::li_gbp(width, n);
        let la_retimed = lilac_opt::retime(&la_system);
        let li_retimed = lilac_opt::retime(&li_system);
        rows.push(Figure13Row {
            n,
            lilac: estimate(&la_system),
            ready_valid: estimate(&li_system),
            lilac_retimed: estimate(&la_retimed),
            ready_valid_retimed: estimate(&li_retimed),
            latency_preserved: la_retimed.output_min_latencies()
                == la_system.output_min_latencies()
                && li_retimed.output_min_latencies() == li_system.output_min_latencies(),
        });
    }
    Ok(rows)
}

/// Geometric-mean summary of Figure 13 (the paper's headline numbers: LI uses
/// ~26% more LUTs, ~33% more registers, and achieves ~7% lower frequency).
#[derive(Clone, Copy, Debug)]
pub struct Figure13Summary {
    /// Geometric-mean LUT overhead of LI over LA, in percent.
    pub li_lut_overhead_pct: f64,
    /// Geometric-mean register overhead of LI over LA, in percent.
    pub li_register_overhead_pct: f64,
    /// Geometric-mean frequency change of LI versus LA, in percent.
    pub li_fmax_delta_pct: f64,
}

/// Summarizes Figure 13 rows with geometric means, as the paper does.
pub fn summarize_figure13(rows: &[Figure13Row]) -> Figure13Summary {
    let geo = |ratios: Vec<f64>| -> f64 {
        let product: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
        product.exp()
    };
    let lut = geo(rows.iter().map(|r| r.ready_valid.luts as f64 / r.lilac.luts as f64).collect());
    let reg = geo(rows
        .iter()
        .map(|r| r.ready_valid.registers as f64 / r.lilac.registers as f64)
        .collect());
    let fmax = geo(rows.iter().map(|r| r.ready_valid.fmax_mhz / r.lilac.fmax_mhz).collect());
    Figure13Summary {
        li_lut_overhead_pct: (lut - 1.0) * 100.0,
        li_register_overhead_pct: (reg - 1.0) * 100.0,
        li_fmax_delta_pct: (fmax - 1.0) * 100.0,
    }
}

// ---------------------------------------------------------------------------
// Supporting case study: the FloPoCo latency sweep (§2.1 / Figure 9 context)
// ---------------------------------------------------------------------------

/// Latencies chosen by the FloPoCo model across frequency targets; used by
/// the quickstart example and the EXPERIMENTS narrative to show why LS
/// integration is brittle.
pub fn flopoco_latency_sweep(width: u64) -> Vec<(u32, u64, u64)> {
    let mut rows = Vec::new();
    for mhz in [100u32, 160, 220, 280, 340] {
        let goals = GenGoals { target_mhz: mhz, ..GenGoals::default() };
        let add = lilac_gen::tools::FloPoCo
            .generate(&GenRequest::new("flopoco", "FPAdd").with_param("W", width).with_goals(goals))
            .map_or(1, |r| r.out_param("L").unwrap_or(1));
        let mul = lilac_gen::tools::FloPoCo
            .generate(&GenRequest::new("flopoco", "FPMul").with_param("W", width).with_goals(goals))
            .map_or(1, |r| r.out_param("L").unwrap_or(1));
        rows.push((mhz, add, mul));
    }
    rows
}

// ---------------------------------------------------------------------------
// Service soak (the fault-tolerant CheckService under sustained load)
// ---------------------------------------------------------------------------

/// One soak run of the long-lived [`CheckService`](lilac_service): request
/// latencies, verdict mix, and fault-tolerance counters under sustained
/// load.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Programs pushed through the service.
    pub iterations: u64,
    /// Programs the service accepted (all obligations proved).
    pub accepted: u64,
    /// Programs the service rejected with diagnostics.
    pub rejected: u64,
    /// Faults the seeded schedule injected (0 when run fault-free).
    pub faults_injected: u64,
    /// Lifetime service counters at the end of the run.
    pub stats: lilac_service::ServiceStats,
    /// Median per-request latency.
    pub p50: Duration,
    /// 99th-percentile per-request latency.
    pub p99: Duration,
    /// Mean per-request latency.
    pub mean: Duration,
    /// Worst per-request latency.
    pub max: Duration,
    /// Wall-clock time for the whole soak.
    pub elapsed: Duration,
}

impl SoakReport {
    /// The report as a single JSON object (no external dependencies; the CI
    /// soak job uploads this as its artifact).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"iterations\":{},\"accepted\":{},\"rejected\":{},\"faults_injected\":{},\
             \"units\":{},\"panics_caught\":{},\"deadline_expiries\":{},\
             \"budget_exhaustions\":{},\"retries\":{},\"degraded_units\":{},\
             \"failed_units\":{},\"cache_quarantines\":{},\
             \"p50_us\":{},\"p99_us\":{},\"mean_us\":{},\"max_us\":{},\"elapsed_ms\":{}}}",
            self.iterations,
            self.accepted,
            self.rejected,
            self.faults_injected,
            self.stats.units,
            self.stats.panics_caught,
            self.stats.deadline_expiries,
            self.stats.budget_exhaustions,
            self.stats.retries,
            self.stats.degraded_units,
            self.stats.failed_units,
            self.stats.cache_quarantines,
            self.p50.as_micros(),
            self.p99.as_micros(),
            self.mean.as_micros(),
            self.max.as_micros(),
            self.elapsed.as_millis(),
        )
    }
}

/// Soaks one persistent [`CheckService`](lilac_service::CheckService) with
/// `iterations` check requests: the eight bundled paper designs round-robin,
/// interleaved with fuzz-synthesized programs (seeded by `seed`, including
/// the sabotaged sixth that must be rejected). With `faults`, the service
/// runs under that seeded fault-injection schedule; every request's verdict
/// is still cross-checked against the one-shot naive checker.
///
/// # Panics
///
/// Panics if the service's verdict ever disagrees with the naive checker or
/// a unit fails outright — a soak run is also a correctness run.
pub fn soak(iterations: u64, seed: u64, faults: Option<u64>) -> SoakReport {
    use lilac_service::{CheckService, ServiceConfig};
    let plan = match faults {
        Some(s) => lilac_util::fault::FaultPlan::seeded(s),
        None => lilac_util::fault::FaultPlan::disabled(),
    };
    let service = CheckService::new(ServiceConfig {
        // Zero backoff: the soak measures service latency, not sleep time.
        backoff: Duration::ZERO,
        faults: plan.clone(),
        ..ServiceConfig::default()
    });
    let designs = Design::all();
    let mut latencies: Vec<Duration> = Vec::with_capacity(iterations as usize);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let start = Instant::now();
    for i in 0..iterations {
        // Even iterations replay a bundled design; odd ones a synthesized
        // fuzz program, so the soak sees both realistic and adversarial
        // shapes (including programs that must be *rejected*).
        let program = if i % 2 == 0 {
            designs[(i as usize / 2) % designs.len()].program().expect("bundled design parses")
        } else {
            let scenario = lilac_fuzz::scenario::generate(lilac_fuzz::case_seed(seed, i));
            lilac_fuzz::synth::synthesize(&scenario).program
        };
        let outcome = service.check(&program);
        latencies.push(outcome.elapsed);
        match &outcome.verdict {
            Ok(_) => accepted += 1,
            Err(_) => rejected += 1,
        }
        let naive = check_program_with(&program, &CheckOptions::naive());
        assert_eq!(
            outcome.verdict.is_ok(),
            naive.is_ok(),
            "soak iteration {i}: service and naive checker disagree"
        );
    }
    let elapsed = start.elapsed();
    let stats = service.stats();
    assert_eq!(stats.failed_units, 0, "soak: the degradation ladder must always recover");
    latencies.sort_unstable();
    let pick = |q: f64| {
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let mean = latencies.iter().sum::<Duration>() / (latencies.len().max(1) as u32);
    SoakReport {
        iterations,
        accepted,
        rejected,
        faults_injected: plan.total_injected(),
        stats,
        p50: pick(0.50),
        p99: pick(0.99),
        mean,
        max: *latencies.last().expect("at least one iteration"),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_is_clean_under_faults() {
        let report = soak(12, 0, Some(1));
        assert_eq!(report.iterations, 12);
        assert_eq!(report.accepted + report.rejected, 12);
        assert!(report.rejected > 0, "the sabotaged sixth must show up by iteration 12");
        assert_eq!(report.stats.failed_units, 0);
        assert!(report.faults_injected > 0, "the seeded schedule must fire");
        assert!(report.p50 <= report.p99 && report.p99 <= report.max);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"failed_units\":0"));
    }

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            let (li, ls) = (&pair[0], &pair[1]);
            assert_eq!(li.style, "LI");
            assert_eq!(ls.style, "LS");
            assert!(li.cost.luts > ls.cost.luts, "{li:?} vs {ls:?}");
            assert!(li.cost.registers > ls.cost.registers, "{li:?} vs {ls:?}");
            assert!(li.cost.fmax_mhz <= ls.cost.fmax_mhz, "{li:?} vs {ls:?}");
        }
    }

    #[test]
    fn table2_matches_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].known, (true, true, true));
        assert_eq!(rows[1].known, (false, true, true));
        assert_eq!(rows[2].known, (false, false, true));
    }

    #[test]
    fn table3_matches_paper() {
        let rows = table3();
        assert_eq!(rows.len(), 5);
        let find = |name: &str| rows.iter().find(|r| r.generator == name).unwrap();
        assert_eq!(find("PipelineC").features.len(), 1);
        assert_eq!(find("FloPoCo").features.len(), 2);
        assert_eq!(find("XLS").features.len(), 2);
        assert_eq!(find("Spiral FFT").features.len(), 3);
        assert_eq!(find("Aetherling").features.len(), 4);
    }

    #[test]
    fn figure8_rows_cover_paper_designs() {
        let rows = figure8().unwrap();
        assert!(rows.len() >= 6);
        let with_paper: Vec<_> = rows.iter().filter(|r| r.paper_lines.is_some()).collect();
        assert_eq!(with_paper.len(), 6);
        for row in &rows {
            assert!(row.lines > 40, "{:?}", row.design);
            assert!(row.obligations > 0, "{:?}", row.design);
            assert!(row.solver.queries > 0, "{:?}", row.design);
        }
        let json = figure8_json(&rows);
        assert!(json.contains("\"figure8\""));
        assert!(json.contains("cache_hit_rate"));
        assert_eq!(json.matches("\"design\"").count(), rows.len());
    }

    #[test]
    fn run_report_carries_every_section_and_warm_rechecks_hit() {
        let figure8_rows = figure8().unwrap();
        let designs = figure8_rows.len();
        let report = run_report(figure8_rows).unwrap();
        assert_eq!(report.figure8.len(), designs);
        assert!(!report.netlists.is_empty());
        assert!(!report.retiming.is_empty());
        assert_eq!(report.incremental.len(), designs);
        for row in &report.incremental {
            assert_eq!(row.warm_hits + row.warm_misses, row.components, "{:?}", row.design);
            assert!(row.warm_hits > 0, "{:?}: warm re-check replayed nothing", row.design);
        }
        // At least one bundled design is fully clean, so its identical warm
        // re-check must be a complete replay.
        assert!(
            report.incremental.iter().any(|r| r.warm_misses == 0),
            "no design achieved a 100% warm hit rate"
        );
        // The lint section covers the whole canonical surface and is
        // populated: the never-stall wrapper glue carries the documented
        // skid-buffer findings.
        assert!(report.lints.len() > designs, "lint surface wider than the designs alone");
        assert!(
            report.lints.iter().any(|r| r.warnings + r.notes > 0),
            "no lint target reported any finding"
        );
        // The campaign section reports a real sharded run: a nonzero
        // fingerprint, one row per shard covering the whole range, a
        // populated signature histogram and a distilled subset no larger
        // than the signature count.
        assert_eq!(report.campaign.shards, 2);
        assert_ne!(report.campaign.fingerprint, 0);
        assert_eq!(report.campaign.shard_rows.len(), 2);
        assert_eq!(
            report.campaign.shard_rows.iter().map(|s| s.cases).sum::<u64>(),
            report.campaign.cases
        );
        assert!(!report.campaign.signatures.is_empty());
        assert_eq!(report.campaign.distilled, report.campaign.signatures.len());
        let json = run_report_json(&report);
        assert!(json.contains("\"schema\": \"lilac-bench-run/v1\""));
        for section in [
            "\"figure8\"",
            "\"netlists\"",
            "\"retiming\"",
            "\"incremental\"",
            "\"lints\"",
            "\"campaign\"",
        ] {
            assert!(json.contains(section), "missing section {section}");
        }
        assert!(json.contains("warm_hit_rate"));
        assert!(json.contains("fmax_after_mhz"));
        assert!(json.contains("nodes_after"));
        assert!(json.contains("\"notes\""));
        assert!(json.contains("\"shard_rows\""));
        assert!(json.contains("\"distilled_cases\""));
    }

    #[test]
    fn optimized_and_naive_checkers_agree_on_every_design() {
        // The A/B contract behind the perf work, end to end: slicing,
        // alpha-invariant caching, indexed scopes and parallelism must not
        // change a single check outcome on any bundled design.
        let naive = lilac_core::CheckOptions::naive();
        for design in Design::all() {
            let program = design.program().unwrap();
            let fast_report = check_program(&program).unwrap();
            let naive_report = check_program_with(&program, &naive).unwrap();
            assert!(
                reports_equivalent(&fast_report, &naive_report),
                "{} reports diverged",
                design.name()
            );
        }
    }

    #[test]
    fn check_program_stats_are_deterministic_under_parallel_checker() {
        let parallel = lilac_core::CheckOptions::default();
        let serial =
            lilac_core::CheckOptions { parallel: false, ..lilac_core::CheckOptions::default() };
        for design in [Design::Gbp, Design::Fpu, Design::BlasLevel1] {
            let program = design.program().unwrap();
            let a = check_program_with(&program, &parallel).unwrap();
            let b = check_program_with(&program, &parallel).unwrap();
            let c = check_program_with(&program, &serial).unwrap();
            for (x, y) in a.components.iter().zip(b.components.iter()) {
                assert_eq!(x.solver_stats, y.solver_stats, "{}", design.name());
            }
            for (x, y) in a.components.iter().zip(c.components.iter()) {
                assert_eq!(x.solver_stats, y.solver_stats, "{}", design.name());
            }
            assert_eq!(a.solver_stats(), c.solver_stats(), "{}", design.name());
        }
    }

    #[test]
    fn solver_speedup_meets_target() {
        let (rows, summary) = solver_speedup(3).unwrap();
        assert_eq!(rows.len(), Design::all().len());
        // The aggregate win of the optimized pipeline (warm persistent
        // cache) over the naive baseline. Measured ~3.5x in release and
        // ~3.0x in debug on one core; asserted with margin for loaded CI
        // machines. The solver-bound designs must individually clear 3x.
        assert!(
            summary.speedup >= 2.2,
            "aggregate speedup regressed: {:.2}x (naive {:?} vs fast {:?})",
            summary.speedup,
            summary.naive_total,
            summary.fast_total
        );
        let best = rows.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
        assert!(best >= 3.0, "no design reaches 3x: best {best:.2}x\n{rows:#?}");
        // The cache must carry real weight: >50% hit rate somewhere.
        assert!(
            rows.iter().any(|r| r.cache_hit_rate > 0.5),
            "no design exceeds 50% cache hit rate: {rows:#?}"
        );
    }

    #[test]
    fn fuzz_throughput_is_clean_and_deterministic() {
        let a = fuzz_throughput(25, 7);
        let b = fuzz_throughput(25, 7);
        assert_eq!(a.cases, 25);
        assert!(a.checked + a.rejected == 25);
        assert!(a.obligations > 0);
        assert_eq!(a.fingerprint, b.fingerprint, "fuzz outcomes must be deterministic");
    }

    #[test]
    fn optimizer_meets_reduction_and_speedup_targets() {
        let rows = optimizer_report(2000, 3).unwrap();
        assert_eq!(rows.len(), 5);
        // The optimizer must never grow a design (the contract `figure8
        // --check` also enforces in CI).
        for row in &rows {
            assert!(
                row.stats.nodes_after <= row.stats.nodes_before,
                "{}: optimizer grew the netlist: {:?}",
                row.design,
                row.stats
            );
        }
        // The headline: >= 20% node-count reduction on at least two bundled
        // paper designs (measured: GBP ~57%, LA GBP system ~40%, LI FPU
        // ~72%, LI GBP ~63%)...
        let reduced: Vec<_> = rows.iter().filter(|r| r.stats.node_reduction() >= 0.20).collect();
        assert!(reduced.len() >= 2, "fewer than two designs reach 20% node reduction: {rows:#?}");
        // ...and the reduction must buy measurable simulator throughput.
        // Wall-clock on a shared runner is noisy, so this asserts only the
        // *best* speedup among the reduced designs, which carries a 2-4x
        // margin over the threshold (measured best: LI FPU ~3.3x); the
        // per-design table is the bench harness's job (`cargo bench`).
        let best = reduced.iter().map(|r| r.sim_speedup).fold(0.0f64, f64::max);
        assert!(
            best > 1.05,
            "no reduced design shows a sim-throughput gain (best {best:.2}x): {rows:#?}"
        );
    }

    #[test]
    fn compiled_backend_clears_2x_on_bundled_designs() {
        let rows = sim_backend_report(2_000, 3).unwrap();
        assert_eq!(rows.len(), 5);
        // The acceptance bar for the compiled tape: at least two bundled
        // paper designs clear 2x compiled-vs-interpreter *vector
        // throughput* — 64 lane-packed vectors per tape step against one
        // interpreted vector. That is the metric the backend exists for
        // (the fuzzer's batched ninth-oracle check); a single broadcast
        // vector pays for all 64 lanes and is *slower* than the
        // interpreter on these wide-datapath designs, which is expected
        // and documented. Measured: 4.9x-12.1x in release, 4.0x-8.5x in
        // debug, so the 2x bar holds with margin on loaded CI machines.
        let fast = rows.iter().filter(|r| r.lane_speedup >= 2.0).count();
        assert!(
            fast >= 2,
            "fewer than two designs reach 2x compiled-vs-interpreter vector throughput: {rows:#?}"
        );
    }

    #[test]
    fn figure13_shape_matches_paper() {
        let rows = figure13().unwrap();
        assert_eq!(rows.len(), 5);
        // LI costs more on every design point.
        for row in &rows {
            assert!(row.ready_valid.registers > row.lilac.registers, "N={}: {:?}", row.n, row);
            assert!(row.ready_valid.luts > row.lilac.luts, "N={}: {row:?}", row.n);
        }
        // Retiming never hurts a design point and never touches latency.
        for row in &rows {
            assert!(row.latency_preserved, "N={}: retiming changed a latency", row.n);
            assert!(
                row.lilac_retimed.fmax_mhz >= row.lilac.fmax_mhz - 1e-9,
                "N={}: retimed LA point is slower: {row:?}",
                row.n
            );
            assert!(
                row.ready_valid_retimed.fmax_mhz >= row.ready_valid.fmax_mhz - 1e-9,
                "N={}: retimed LI point is slower: {row:?}",
                row.n
            );
        }
        // The LA implementation needs fewer registers as N grows (less
        // serialization); N=16 uses substantially fewer than N=1.
        let first = &rows[0];
        let last = &rows[4];
        assert!(
            (last.lilac.registers as f64) < 0.9 * first.lilac.registers as f64,
            "LA registers should shrink with N: {} -> {}",
            first.lilac.registers,
            last.lilac.registers
        );
        let summary = summarize_figure13(&rows);
        assert!(summary.li_lut_overhead_pct > 5.0);
        assert!(summary.li_register_overhead_pct > 10.0);
    }

    #[test]
    fn retiming_improves_fmax_on_figure13_points_with_zero_latency_change() {
        // The retiming acceptance bar: at least two Figure 13 design
        // points get a strictly better estimated fmax, and no point's
        // latency moves by even one cycle. (Measured: the LA pyramids at
        // N=8 and N=16 go from ~273 MHz to ~376/403 MHz — their critical
        // path is the blend-lane adder chain the retimer rebalances; the
        // N<=4 LA points are bound by the serializer mux cascade feeding
        // the unmovable convolution cores, and the LI points by the
        // ready/valid glue that ends in RegEn enables, which retiming
        // correctly refuses to touch.)
        let rows = figure13().unwrap();
        let mut improved = 0;
        for row in &rows {
            assert!(row.latency_preserved, "N={}: latency must not change", row.n);
            for (before, after) in
                [(&row.lilac, &row.lilac_retimed), (&row.ready_valid, &row.ready_valid_retimed)]
            {
                assert!(
                    after.fmax_mhz >= before.fmax_mhz - 1e-9,
                    "N={}: retiming must never lower fmax",
                    row.n
                );
                if after.fmax_mhz > before.fmax_mhz * 1.01 {
                    improved += 1;
                }
            }
        }
        assert!(
            improved >= 2,
            "retiming must improve estimated fmax on at least two Figure 13 design points \
             (got {improved}): {rows:#?}"
        );
    }

    #[test]
    fn retiming_report_is_sound_and_finds_wins() {
        let rows = retiming_report(1).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.latency_preserved, "{}: latency must not change", row.design);
            assert!(
                row.stats.critical_path_after_ns <= row.stats.critical_path_before_ns + 1e-9,
                "{}: critical path grew: {:?}",
                row.design,
                row.stats
            );
        }
        // At least one bundled paper design must actually move registers
        // and gain fmax (measured: the elaborated GBP, whose blend lanes
        // rebalance from 273 MHz to 403 MHz with *fewer* register bits —
        // the forward moves merge per-operand stages into one).
        let best = rows
            .iter()
            .max_by(|a, b| a.stats.fmax_gain_pct().partial_cmp(&b.stats.fmax_gain_pct()).unwrap())
            .unwrap();
        assert!(
            best.stats.moves() >= 1 && best.stats.fmax_gain_pct() > 10.0,
            "no paper design gains >10% fmax from retiming: {rows:#?}"
        );
    }

    #[test]
    fn flopoco_sweep_is_monotone() {
        let rows = flopoco_latency_sweep(32);
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(rows.first().unwrap().1 < rows.last().unwrap().1);
    }
}
