//! The benchmark harness: regenerates every table and figure of the paper's
//! evaluation from the reproduction's own substrate.
//!
//! Each experiment has a library function returning structured rows (used by
//! the integration tests and Criterion benches) and a binary that prints the
//! table:
//!
//! | Exhibit | Function | Binary |
//! |---|---|---|
//! | Table 1 — LS vs LI FPU resources | [`table1`] | `cargo run -p lilac-bench --bin table1` |
//! | Table 2 — when timing is known | [`table2`] | `cargo run -p lilac-bench --bin table2` |
//! | Table 3 — generators and features | [`table3`] | `cargo run -p lilac-bench --bin table3` |
//! | Figure 8 — compiler performance | [`figure8`] | `cargo run -p lilac-bench --bin figure8` |
//! | Figure 13 — GBP LA vs LI | [`figure13`] | `cargo run -p lilac-bench --bin figure13` |
//!
//! Absolute LUT/register/frequency numbers come from `lilac-synth`'s analytic
//! model rather than a Vivado run, so they are not expected to match the
//! paper's numbers; the relationships the paper argues for (who wins, by
//! roughly what factor, and how the gap moves across design points) are what
//! `EXPERIMENTS.md` compares.

use lilac_core::{check_program, GeneratorFeature, InterfaceStyle};
use lilac_designs::Design;
use lilac_elab::{elaborate_module, ElabConfig};
use lilac_gen::{GenGoals, GenRequest, Generator, GeneratorRegistry};
use lilac_li::{fpu, gbp};
use lilac_synth::{estimate, ResourceEstimate};
use lilac_util::diag::Result;
use std::collections::BTreeMap;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1: an FPU implementation style at one FloPoCo
/// configuration.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// `"LI"` or `"LS"`.
    pub style: &'static str,
    /// FloPoCo adder latency.
    pub adder_latency: u32,
    /// FloPoCo multiplier latency.
    pub multiplier_latency: u32,
    /// Resource estimate.
    pub cost: ResourceEstimate,
}

/// Regenerates Table 1: latency-sensitive vs latency-insensitive FPU
/// implementations at the two FloPoCo configurations the paper reports
/// (adder/multiplier latencies 1/1 and 4/2).
///
/// The LS rows come from elaborating the *Lilac* FPU (`lilac-designs`) with
/// FloPoCo goals that produce the corresponding latencies; the LI rows wrap
/// the same cores in ready–valid handshakes (`lilac-li`).
///
/// # Errors
///
/// Propagates parse/type-check/elaboration errors (none expected).
pub fn table1() -> Result<Vec<Table1Row>> {
    let program = Design::Fpu.program()?;
    check_program(&program)?;
    let mut rows = Vec::new();
    for (target_mhz, expect_a, expect_m) in [(100u32, 1u32, 1u32), (280, 4, 2)] {
        let mut registry = GeneratorRegistry::with_builtin_tools();
        registry.set_default_goals(GenGoals { target_mhz, ..GenGoals::default() });
        let module = elaborate_module(
            &program,
            "FPU",
            &BTreeMap::from([("W".to_string(), 32)]),
            &ElabConfig::with_registry(registry),
        )?;
        let ls_cost = estimate(&module.netlist);
        let li_cost = estimate(&fpu::li_fpu(32, expect_a, expect_m));
        rows.push(Table1Row {
            style: "LI",
            adder_latency: expect_a,
            multiplier_latency: expect_m,
            cost: li_cost,
        });
        rows.push(Table1Row {
            style: "LS",
            adder_latency: expect_a,
            multiplier_latency: expect_m,
            cost: ls_cost,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Interface style.
    pub style: InterfaceStyle,
    /// Whether timing is known at design / compile / execute time.
    pub known: (bool, bool, bool),
}

/// Regenerates Table 2: when each interface style's timing behaviour is
/// known.
pub fn table2() -> Vec<Table2Row> {
    InterfaceStyle::all()
        .into_iter()
        .map(|style| {
            let k = style.timing_knowledge();
            Table2Row { style, known: (k.at_design_time, k.at_compile_time, k.at_execute_time) }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// One row of Table 3: a generator and the Lilac features its interfaces
/// need.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Generator name as the paper lists it.
    pub generator: &'static str,
    /// Features the generator model declares.
    pub features: Vec<GeneratorFeature>,
}

/// Regenerates Table 3 from the generator models' own feature declarations.
pub fn table3() -> Vec<Table3Row> {
    let tools: Vec<(&'static str, Box<dyn Generator>)> = vec![
        ("PipelineC", Box::new(lilac_gen::tools::PipelineC)),
        ("FloPoCo", Box::new(lilac_gen::tools::FloPoCo)),
        ("XLS", Box::new(lilac_gen::tools::Xls)),
        ("Spiral FFT", Box::new(lilac_gen::tools::SpiralFft)),
        ("Aetherling", Box::new(lilac_gen::tools::Aetherling)),
    ];
    tools
        .into_iter()
        .map(|(name, tool)| Table3Row { generator: name, features: tool.features() })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// One row of Figure 8: a bundled design, its size, and its type-check time.
#[derive(Clone, Debug)]
pub struct Figure8Row {
    /// Design.
    pub design: Design,
    /// Lines of Lilac source (including the standard library).
    pub lines: usize,
    /// Measured type-check time.
    pub check_time: Duration,
    /// Number of solver obligations discharged.
    pub obligations: usize,
    /// The paper's reported line count, if this row appears in Figure 8.
    pub paper_lines: Option<usize>,
    /// The paper's reported time in milliseconds, if reported.
    pub paper_time_ms: Option<u64>,
}

/// Regenerates Figure 8: type-checker performance on the bundled designs.
///
/// # Errors
///
/// Propagates parse or type-check errors (none expected).
pub fn figure8() -> Result<Vec<Figure8Row>> {
    let mut rows = Vec::new();
    for design in Design::all() {
        let program = design.program()?;
        let report = check_program(&program)?;
        rows.push(Figure8Row {
            design,
            lines: design.line_count(),
            check_time: report.total_elapsed(),
            obligations: report.total_obligations(),
            paper_lines: design.paper_lines(),
            paper_time_ms: design.paper_time_ms(),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figure 13
// ---------------------------------------------------------------------------

/// One design point of Figure 13: the LA (Lilac) and LI (ready–valid)
/// Gaussian blur pyramids at one convolution parallelism.
#[derive(Clone, Debug)]
pub struct Figure13Row {
    /// Aetherling parallelism (the paper's N).
    pub n: u32,
    /// Cost of the latency-abstract implementation (elaborated Lilac design
    /// plus its serializer front-end).
    pub lilac: ResourceEstimate,
    /// Cost of the ready–valid implementation.
    pub ready_valid: ResourceEstimate,
}

/// Regenerates Figure 13: resource usage and maximum frequency of the GBP
/// implementations for N ∈ {1, 2, 4, 8, 16}.
///
/// # Errors
///
/// Propagates parse/type-check/elaboration errors (none expected).
pub fn figure13() -> Result<Vec<Figure13Row>> {
    let program = Design::Gbp.program()?;
    check_program(&program)?;
    let width = 8u32;
    let mut rows = Vec::new();
    for n in [1u32, 2, 4, 8, 16] {
        let mut registry = GeneratorRegistry::with_builtin_tools();
        registry.set_default_knob("aetherling", "multipliers", n as u64);
        let module = elaborate_module(
            &program,
            "Gbp",
            &BTreeMap::from([("W".to_string(), width as u64)]),
            &ElabConfig::with_registry(registry),
        )?;
        let la_system = gbp::la_gbp_system(&module.netlist, width, n);
        let lilac = estimate(&la_system);
        let ready_valid = estimate(&gbp::li_gbp(width, n));
        rows.push(Figure13Row { n, lilac, ready_valid });
    }
    Ok(rows)
}

/// Geometric-mean summary of Figure 13 (the paper's headline numbers: LI uses
/// ~26% more LUTs, ~33% more registers, and achieves ~7% lower frequency).
#[derive(Clone, Copy, Debug)]
pub struct Figure13Summary {
    /// Geometric-mean LUT overhead of LI over LA, in percent.
    pub li_lut_overhead_pct: f64,
    /// Geometric-mean register overhead of LI over LA, in percent.
    pub li_register_overhead_pct: f64,
    /// Geometric-mean frequency change of LI versus LA, in percent.
    pub li_fmax_delta_pct: f64,
}

/// Summarizes Figure 13 rows with geometric means, as the paper does.
pub fn summarize_figure13(rows: &[Figure13Row]) -> Figure13Summary {
    let geo = |ratios: Vec<f64>| -> f64 {
        let product: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
        product.exp()
    };
    let lut = geo(rows.iter().map(|r| r.ready_valid.luts as f64 / r.lilac.luts as f64).collect());
    let reg = geo(
        rows.iter().map(|r| r.ready_valid.registers as f64 / r.lilac.registers as f64).collect(),
    );
    let fmax =
        geo(rows.iter().map(|r| r.ready_valid.fmax_mhz / r.lilac.fmax_mhz).collect());
    Figure13Summary {
        li_lut_overhead_pct: (lut - 1.0) * 100.0,
        li_register_overhead_pct: (reg - 1.0) * 100.0,
        li_fmax_delta_pct: (fmax - 1.0) * 100.0,
    }
}

// ---------------------------------------------------------------------------
// Supporting case study: the FloPoCo latency sweep (§2.1 / Figure 9 context)
// ---------------------------------------------------------------------------

/// Latencies chosen by the FloPoCo model across frequency targets; used by
/// the quickstart example and the EXPERIMENTS narrative to show why LS
/// integration is brittle.
pub fn flopoco_latency_sweep(width: u64) -> Vec<(u32, u64, u64)> {
    let mut rows = Vec::new();
    for mhz in [100u32, 160, 220, 280, 340] {
        let goals = GenGoals { target_mhz: mhz, ..GenGoals::default() };
        let add = lilac_gen::tools::FloPoCo
            .generate(&GenRequest::new("flopoco", "FPAdd").with_param("W", width).with_goals(goals))
            .map(|r| r.out_param("L").unwrap_or(1))
            .unwrap_or(1);
        let mul = lilac_gen::tools::FloPoCo
            .generate(&GenRequest::new("flopoco", "FPMul").with_param("W", width).with_goals(goals))
            .map(|r| r.out_param("L").unwrap_or(1))
            .unwrap_or(1);
        rows.push((mhz, add, mul));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            let (li, ls) = (&pair[0], &pair[1]);
            assert_eq!(li.style, "LI");
            assert_eq!(ls.style, "LS");
            assert!(li.cost.luts > ls.cost.luts, "{li:?} vs {ls:?}");
            assert!(li.cost.registers > ls.cost.registers, "{li:?} vs {ls:?}");
            assert!(li.cost.fmax_mhz <= ls.cost.fmax_mhz, "{li:?} vs {ls:?}");
        }
    }

    #[test]
    fn table2_matches_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].known, (true, true, true));
        assert_eq!(rows[1].known, (false, true, true));
        assert_eq!(rows[2].known, (false, false, true));
    }

    #[test]
    fn table3_matches_paper() {
        let rows = table3();
        assert_eq!(rows.len(), 5);
        let find = |name: &str| rows.iter().find(|r| r.generator == name).unwrap();
        assert_eq!(find("PipelineC").features.len(), 1);
        assert_eq!(find("FloPoCo").features.len(), 2);
        assert_eq!(find("XLS").features.len(), 2);
        assert_eq!(find("Spiral FFT").features.len(), 3);
        assert_eq!(find("Aetherling").features.len(), 4);
    }

    #[test]
    fn figure8_rows_cover_paper_designs() {
        let rows = figure8().unwrap();
        assert!(rows.len() >= 6);
        let with_paper: Vec<_> = rows.iter().filter(|r| r.paper_lines.is_some()).collect();
        assert_eq!(with_paper.len(), 6);
        for row in &rows {
            assert!(row.lines > 40, "{:?}", row.design);
            assert!(row.obligations > 0, "{:?}", row.design);
        }
    }

    #[test]
    fn figure13_shape_matches_paper() {
        let rows = figure13().unwrap();
        assert_eq!(rows.len(), 5);
        // LI costs more on every design point.
        for row in &rows {
            assert!(
                row.ready_valid.registers > row.lilac.registers,
                "N={}: {:?}",
                row.n,
                row
            );
            assert!(row.ready_valid.luts > row.lilac.luts, "N={}: {row:?}", row.n);
        }
        // The LA implementation needs fewer registers as N grows (less
        // serialization); N=16 uses substantially fewer than N=1.
        let first = &rows[0];
        let last = &rows[4];
        assert!(
            (last.lilac.registers as f64) < 0.9 * first.lilac.registers as f64,
            "LA registers should shrink with N: {} -> {}",
            first.lilac.registers,
            last.lilac.registers
        );
        let summary = summarize_figure13(&rows);
        assert!(summary.li_lut_overhead_pct > 5.0);
        assert!(summary.li_register_overhead_pct > 10.0);
    }

    #[test]
    fn flopoco_sweep_is_monotone() {
        let rows = flopoco_latency_sweep(32);
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(rows.first().unwrap().1 < rows.last().unwrap().1);
    }
}
