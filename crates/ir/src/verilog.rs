//! Verilog emission.
//!
//! Renders a [`Netlist`] as a single synthesizable Verilog module. Pipelined
//! cores are emitted as behavioural shift-register pipelines (a stand-in for
//! the encrypted or generated IP the paper links against); everything else
//! maps directly onto always blocks and continuous assignments.
//!
//! # Cycle-exactness
//!
//! The emitted module is cycle-for-cycle equivalent to the `lilac-sim`
//! interpretation of the same netlist: a node with
//! [`pipeline_depth`](crate::NodeKind::pipeline_depth) `L` is rendered as
//! exactly `L` chained registers (an `L == 0` node is a continuous assign),
//! state is reset-less and assumed to power up at zero, and arithmetic is
//! two-state (division by zero yields 0). The `lilac-vsim` crate parses this
//! exact subset back and the fuzzer's fifth oracle holds the two simulations
//! to bit-identical outputs on every cycle.

use crate::netlist::{Netlist, NodeId, NodeKind, PipeOp};
use std::collections::HashSet;
use std::fmt::Write;

fn wire(id: NodeId) -> String {
    format!("n{}", id.0)
}

/// The IEEE 1364-2001 reserved words (plus `logic`, reserved in
/// SystemVerilog), all of which must never be used as identifiers.
/// `crates/vsim`'s parser rejects the same list (kept in sync by
/// `crates/vsim/tests/golden.rs`), so a keyword leaking through emission is
/// caught by the fuzzer's Verilog oracle rather than by a downstream tool.
pub const VERILOG_KEYWORDS: &[&str] = &[
    "always",
    "and",
    "assign",
    "automatic",
    "begin",
    "buf",
    "bufif0",
    "bufif1",
    "case",
    "casex",
    "casez",
    "cell",
    "cmos",
    "config",
    "deassign",
    "default",
    "defparam",
    "design",
    "disable",
    "edge",
    "else",
    "end",
    "endcase",
    "endconfig",
    "endfunction",
    "endgenerate",
    "endmodule",
    "endprimitive",
    "endspecify",
    "endtable",
    "endtask",
    "event",
    "for",
    "force",
    "forever",
    "fork",
    "function",
    "generate",
    "genvar",
    "highz0",
    "highz1",
    "if",
    "ifnone",
    "incdir",
    "include",
    "initial",
    "inout",
    "input",
    "instance",
    "integer",
    "join",
    "large",
    "liblist",
    "library",
    "localparam",
    "logic",
    "macromodule",
    "medium",
    "module",
    "nand",
    "negedge",
    "nmos",
    "nor",
    "noshowcancelled",
    "not",
    "notif0",
    "notif1",
    "or",
    "output",
    "parameter",
    "pmos",
    "posedge",
    "primitive",
    "pull0",
    "pull1",
    "pulldown",
    "pullup",
    "pulsestyle_ondetect",
    "pulsestyle_onevent",
    "rcmos",
    "real",
    "realtime",
    "reg",
    "release",
    "repeat",
    "rnmos",
    "rpmos",
    "rtran",
    "rtranif0",
    "rtranif1",
    "scalared",
    "showcancelled",
    "signed",
    "small",
    "specify",
    "specparam",
    "strong0",
    "strong1",
    "supply0",
    "supply1",
    "table",
    "task",
    "time",
    "tran",
    "tranif0",
    "tranif1",
    "tri",
    "tri0",
    "tri1",
    "triand",
    "trior",
    "trireg",
    "unsigned",
    "use",
    "vectored",
    "wait",
    "wand",
    "weak0",
    "weak1",
    "while",
    "wire",
    "wor",
    "xnor",
    "xor",
];

/// True for names the emitter itself generates for internal nets: `n<k>`
/// and the `n<k>_sr` shift arrays. Port names must stay out of this
/// namespace.
fn is_internal_net_name(name: &str) -> bool {
    let Some(rest) = name.strip_prefix('n') else { return false };
    let digits_end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    if digits_end == 0 {
        return false;
    }
    matches!(&rest[digits_end..], "" | "_sr")
}

/// Replaces characters that are illegal in a Verilog identifier and guards
/// against a leading digit. The result is legal but not necessarily unique
/// or keyword-free; [`unique_name`] layers that on top.
fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Sanitizes `name` and disambiguates it against keywords, the emitter's
/// internal net namespace, and every name already in `used`. Distinct
/// source names that collide after character replacement (`a+b` and `a-b`
/// both sanitize to `a_b`) get deterministic `_2`, `_3`, ... suffixes.
fn unique_name(name: &str, used: &mut HashSet<String>) -> String {
    let base = sanitize(name);
    let illegal = |s: &str| VERILOG_KEYWORDS.contains(&s) || is_internal_net_name(s);
    let mut candidate = base.clone();
    let mut k = 1;
    while illegal(&candidate) || used.contains(&candidate) {
        k += 1;
        candidate = format!("{base}_{k}");
    }
    used.insert(candidate.clone());
    candidate
}

/// Emits `netlist` as Verilog source text.
///
/// The module has an implicit `clk` input; sequential primitives are clocked
/// on its positive edge. Port names are sanitized into legal, unique Verilog
/// identifiers (in declaration order: inputs first, then outputs), so a port
/// named `reg` or two ports that collide after character replacement still
/// produce a legal module.
pub fn emit_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    // Port name table: inputs by index, then outputs by position.
    let mut used: HashSet<String> = HashSet::from(["clk".to_string()]);
    let input_names: Vec<String> =
        netlist.inputs.iter().map(|p| unique_name(&p.name, &mut used)).collect();
    let output_names: Vec<String> =
        netlist.outputs.iter().map(|(p, _)| unique_name(&p.name, &mut used)).collect();

    let mut ports: Vec<String> = vec!["clk".to_string()];
    ports.extend(input_names.iter().cloned());
    ports.extend(output_names.iter().cloned());
    writeln!(out, "// Generated by the Lilac reproduction compiler").unwrap();
    writeln!(out, "module {}({});", module_name(&netlist.name), ports.join(", ")).unwrap();
    writeln!(out, "  input clk;").unwrap();
    for (p, name) in netlist.inputs.iter().zip(&input_names) {
        writeln!(out, "  input [{}:0] {};", p.width - 1, name).unwrap();
    }
    for ((p, _), name) in netlist.outputs.iter().zip(&output_names) {
        writeln!(out, "  output [{}:0] {};", p.width - 1, name).unwrap();
    }
    // Wire declarations.
    for (id, node) in netlist.iter() {
        match node.kind {
            NodeKind::Input(_) => {}
            _ => {
                let storage = if node.kind.is_sequential() { "reg" } else { "wire" };
                writeln!(out, "  {storage} [{}:0] {}; // {}", node.width - 1, wire(id), node.name)
                    .unwrap();
            }
        }
    }

    let operand = |id: NodeId| -> String {
        let node = netlist.node(id);
        match &node.kind {
            NodeKind::Input(idx) => input_names[*idx].clone(),
            _ => wire(id),
        }
    };

    let mut seq = String::new();
    for (id, node) in netlist.iter() {
        let w = wire(id);
        match &node.kind {
            NodeKind::Input(_) => {}
            NodeKind::Const(v) => {
                writeln!(out, "  assign {w} = {}'d{v};", node.width).unwrap();
            }
            NodeKind::Reg => {
                writeln!(seq, "    {w} <= {};", operand(node.inputs[0])).unwrap();
            }
            NodeKind::RegEn => {
                writeln!(
                    seq,
                    "    if ({}) {w} <= {};",
                    operand(node.inputs[1]),
                    operand(node.inputs[0])
                )
                .unwrap();
            }
            NodeKind::Delay(n) => {
                // A delay line of exactly `n` registers: `n - 1` shift stages
                // in an unpacked array feeding the output register, so a value
                // presented at the input appears at the output `n` cycles
                // later (the off-by-one of emitting the array *and* an output
                // register was the historical bug the vsim oracle caught).
                emit_shift_chain(&mut out, &mut seq, &w, node.width, *n, &operand(node.inputs[0]));
            }
            NodeKind::Add => emit_binop(&mut out, &w, "+", node, &operand),
            NodeKind::Sub => emit_binop(&mut out, &w, "-", node, &operand),
            NodeKind::Mul => emit_binop(&mut out, &w, "*", node, &operand),
            NodeKind::And => emit_binop(&mut out, &w, "&", node, &operand),
            NodeKind::Or => emit_binop(&mut out, &w, "|", node, &operand),
            NodeKind::Xor => emit_binop(&mut out, &w, "^", node, &operand),
            NodeKind::Eq => emit_binop(&mut out, &w, "==", node, &operand),
            NodeKind::Lt => emit_binop(&mut out, &w, "<", node, &operand),
            NodeKind::Not => {
                writeln!(out, "  assign {w} = ~{};", operand(node.inputs[0])).unwrap();
            }
            NodeKind::Mux => {
                writeln!(
                    out,
                    "  assign {w} = {} ? {} : {};",
                    operand(node.inputs[0]),
                    operand(node.inputs[1]),
                    operand(node.inputs[2])
                )
                .unwrap();
            }
            NodeKind::Slice { lo } => {
                writeln!(
                    out,
                    "  assign {w} = {}[{}:{}];",
                    operand(node.inputs[0]),
                    lo + node.width - 1,
                    lo
                )
                .unwrap();
            }
            NodeKind::Concat => {
                let parts: Vec<String> = node.inputs.iter().map(|&i| operand(i)).collect();
                writeln!(out, "  assign {w} = {{{}}};", parts.join(", ")).unwrap();
            }
            NodeKind::PipelinedOp { op, latency, ii } => {
                let comb = pipeline_comb_expr(*op, node, &operand);
                writeln!(out, "  // {} core: latency {latency}, II {ii}", op.mnemonic()).unwrap();
                emit_shift_chain(&mut out, &mut seq, &w, node.width, *latency, &comb);
            }
        }
    }
    if !seq.is_empty() {
        writeln!(out, "  always @(posedge clk) begin").unwrap();
        out.push_str(&seq);
        writeln!(out, "  end").unwrap();
    }
    // Outputs go through `operand` too: an output driven directly by a
    // module input must reference the (sanitized) port, not a nonexistent
    // internal net — a divergence the vsim oracle caught on its first run.
    for ((_, id), name) in netlist.outputs.iter().zip(&output_names) {
        writeln!(out, "  assign {} = {};", name, operand(*id)).unwrap();
    }
    writeln!(out, "endmodule").unwrap();
    out
}

/// Renders `depth` chained registers from the combinational expression
/// `input` into the net `w`:
///
/// * `depth == 0` — a continuous assign (combinational passthrough, per the
///   [`pipeline_depth`](crate::NodeKind::pipeline_depth) contract);
/// * `depth == 1` — `w` itself is the single register (no degenerate
///   `[0:0]` array);
/// * `depth >= 2` — `depth - 1` array stages plus the output register.
fn emit_shift_chain(
    out: &mut String,
    seq: &mut String,
    w: &str,
    width: u32,
    depth: u32,
    input: &str,
) {
    match depth {
        0 => writeln!(out, "  assign {w} = {input};").unwrap(),
        1 => writeln!(seq, "    {w} <= {input};").unwrap(),
        _ => {
            writeln!(out, "  reg [{}:0] {w}_sr [0:{}];", width - 1, depth - 2).unwrap();
            writeln!(seq, "    {w}_sr[0] <= {input};").unwrap();
            for k in 1..depth - 1 {
                writeln!(seq, "    {w}_sr[{k}] <= {w}_sr[{}];", k - 1).unwrap();
            }
            writeln!(seq, "    {w} <= {w}_sr[{}];", depth - 2).unwrap();
        }
    }
}

fn module_name(name: &str) -> String {
    let mut used = HashSet::new();
    unique_name(name, &mut used)
}

fn emit_binop(
    out: &mut String,
    w: &str,
    op: &str,
    node: &crate::netlist::Node,
    operand: &impl Fn(NodeId) -> String,
) {
    writeln!(out, "  assign {w} = {} {op} {};", operand(node.inputs[0]), operand(node.inputs[1]))
        .unwrap();
}

fn pipeline_comb_expr(
    op: PipeOp,
    node: &crate::netlist::Node,
    operand: &impl Fn(NodeId) -> String,
) -> String {
    let ins: Vec<String> = node.inputs.iter().map(|&i| operand(i)).collect();
    match op {
        PipeOp::FAdd => format!("{} + {}", ins[0], ins[1]),
        PipeOp::FMul | PipeOp::IntMul => format!("{} * {}", ins[0], ins[1]),
        PipeOp::Div => format!("{} / {}", ins[0], ins[1]),
        PipeOp::Mac => {
            if ins.len() >= 3 {
                format!("{} * {} + {}", ins[0], ins[1], ins[2])
            } else {
                format!("{} * {}", ins[0], ins[1])
            }
        }
        PipeOp::Conv { .. } | PipeOp::Fft { .. } => {
            // Behavioural stand-in: sum of the inputs.
            ins.join(" + ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, NodeKind, PipeOp};

    #[test]
    fn emits_structurally_complete_verilog() {
        let mut n = Netlist::new("fpu-top");
        let a = n.add_input("a", 32);
        let b = n.add_input("b", 32);
        let sel = n.add_input("op", 1);
        let add = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::FAdd, latency: 2, ii: 1 },
            vec![a, b],
            32,
            "fadd",
        );
        let mul = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::FMul, latency: 4, ii: 1 },
            vec![a, b],
            32,
            "fmul",
        );
        let add_d = n.add_node(NodeKind::Delay(2), vec![add], 32, "add_delay");
        let sel_d = n.add_node(NodeKind::Delay(4), vec![sel], 1, "op_delay");
        let out = n.add_node(NodeKind::Mux, vec![sel_d, add_d, mul], 32, "out_mux");
        n.add_output("o", out);
        assert!(n.validate().is_ok());

        let v = emit_verilog(&n);
        assert!(v.contains("module fpu_top(clk, a, b, op, o);"));
        assert!(v.contains("input [31:0] a;"));
        assert!(v.contains("output [31:0] o;"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("fadd core: latency 2, II 1"));
        assert!(v.contains("assign o ="));
        // Balanced module/endmodule.
        assert_eq!(v.matches("module ").count(), 1 + v.matches("endmodule").count() - 1);
    }

    #[test]
    fn combinational_only_module_has_no_always_block() {
        let mut n = Netlist::new("mux");
        let s = n.add_input("s", 1);
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let m = n.add_node(NodeKind::Mux, vec![s, a, b], 8, "m");
        n.add_output("o", m);
        let v = emit_verilog(&n);
        assert!(!v.contains("always"));
        assert!(v.contains("assign n3 = s ? a : b;"));
    }

    #[test]
    fn constants_and_logic_render() {
        let mut n = Netlist::new("logic");
        let a = n.add_input("a", 4);
        let c = n.add_const(5, 4);
        let x = n.add_node(NodeKind::Xor, vec![a, c], 4, "x");
        let eq = n.add_node(NodeKind::Eq, vec![x, c], 1, "eq");
        let not = n.add_node(NodeKind::Not, vec![eq], 1, "ne");
        n.add_output("o", not);
        let v = emit_verilog(&n);
        assert!(v.contains("assign n1 = 4'd5;"));
        assert!(v.contains("^"));
        assert!(v.contains("=="));
        assert!(v.contains("~"));
    }

    #[test]
    fn delay_line_has_exactly_n_registers() {
        // Delay(n) must be n registers end to end: n - 1 array stages plus
        // the output register. The old emission had an extra output stage.
        let mut n = Netlist::new("delay3");
        let i = n.add_input("i", 8);
        let d = n.add_node(NodeKind::Delay(3), vec![i], 8, "d");
        n.add_output("o", d);
        let v = emit_verilog(&n);
        assert!(v.contains("reg [7:0] n1_sr [0:1];"), "{v}");
        assert!(v.contains("n1_sr[0] <= i;"), "{v}");
        assert!(v.contains("n1_sr[1] <= n1_sr[0];"), "{v}");
        assert!(v.contains("n1 <= n1_sr[1];"), "{v}");
    }

    #[test]
    fn delay_one_and_zero_have_no_degenerate_array() {
        let mut n = Netlist::new("delays");
        let i = n.add_input("i", 8);
        let d1 = n.add_node(NodeKind::Delay(1), vec![i], 8, "d1");
        let d0 = n.add_node(NodeKind::Delay(0), vec![i], 8, "d0");
        n.add_output("o1", d1);
        n.add_output("o0", d0);
        let v = emit_verilog(&n);
        assert!(!v.contains("_sr"), "no shift array for Delay(0)/Delay(1):\n{v}");
        assert!(v.contains("n1 <= i;"), "{v}");
        // Delay(0) is a combinational passthrough on a wire.
        assert!(v.contains("wire [7:0] n2;"), "{v}");
        assert!(v.contains("assign n2 = i;"), "{v}");
    }

    #[test]
    fn zero_latency_core_is_combinational() {
        let mut n = Netlist::new("comb_core");
        let a = n.add_input("a", 16);
        let b = n.add_input("b", 16);
        let c = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::FMul, latency: 0, ii: 1 },
            vec![a, b],
            16,
            "core",
        );
        n.add_output("o", c);
        let v = emit_verilog(&n);
        assert!(!v.contains("always"), "{v}");
        assert!(v.contains("wire [15:0] n2;"), "{v}");
        assert!(v.contains("assign n2 = a * b;"), "{v}");
    }

    #[test]
    fn full_reserved_word_list_is_escaped() {
        // Not just `reg`/`wire`: the whole IEEE 1364-2001 set, including the
        // words with no role in the emitted subset (`fork`, `edge`, ...).
        for kw in ["fork", "edge", "event", "wand", "wait", "table", "release"] {
            let mut n = Netlist::new("m");
            let i = n.add_input(kw, 8);
            n.add_output("o", i);
            let v = emit_verilog(&n);
            assert!(v.contains(&format!("input [7:0] {kw}_2;")), "`{kw}` must be escaped:\n{v}");
            assert!(!v.contains(&format!(" {kw};")), "`{kw}` must not survive:\n{v}");
        }
    }

    #[test]
    fn sanitize_escapes_keywords_and_resolves_collisions() {
        let mut n = Netlist::new("module");
        let r = n.add_input("reg", 8);
        let a = n.add_input("a+b", 8);
        let b = n.add_input("a-b", 8);
        let sum = n.add_node(NodeKind::Add, vec![a, b], 8, "sum");
        let x = n.add_node(NodeKind::Xor, vec![sum, r], 8, "x");
        n.add_output("wire", x);
        let v = emit_verilog(&n);
        // Keywords are suffixed, colliding sanitizations are numbered.
        assert!(v.contains("module module_2(clk, reg_2, a_b, a_b_2, wire_2);"), "{v}");
        assert!(v.contains("input [7:0] reg_2;"), "{v}");
        assert!(v.contains("input [7:0] a_b;"), "{v}");
        assert!(v.contains("input [7:0] a_b_2;"), "{v}");
        assert!(v.contains("output [7:0] wire_2;"), "{v}");
        assert!(v.contains("assign n3 = a_b + a_b_2;"), "{v}");
        // No raw keyword identifier survives anywhere.
        for line in v.lines() {
            assert!(!line.contains(" reg;") && !line.contains(" wire;"), "{line}");
        }
    }

    #[test]
    fn sanitize_avoids_internal_net_namespace() {
        // A port literally named like an internal net must not alias it.
        let mut n = Netlist::new("alias");
        let a = n.add_input("n1", 8);
        let r = n.add_node(NodeKind::Reg, vec![a], 8, "r");
        n.add_output("o", r);
        let v = emit_verilog(&n);
        assert!(v.contains("input [7:0] n1_2;"), "{v}");
        assert!(v.contains("n1 <= n1_2;"), "{v}");
        assert!(is_internal_net_name("n1"));
        assert!(is_internal_net_name("n23_sr"));
        assert!(!is_internal_net_name("n0_pipe"), "no `_pipe` nets are emitted");
        assert!(!is_internal_net_name("n"));
        assert!(!is_internal_net_name("next"));
        assert!(!is_internal_net_name("n1_x"));
    }
}
