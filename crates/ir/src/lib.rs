//! The elaborated structural IR: netlists of hardware primitives.
//!
//! After type checking, Lilac's elaborator (in `lilac-elab`) evaluates all
//! compile-time constructs and produces a flat [`Netlist`]: a directed graph
//! of primitive [`Node`]s (registers, arithmetic, multiplexers, and the
//! pipelined cores emitted by external generators) connected by wires. The
//! netlist plays the role of the "valid Filament program … compiled down to
//! a Verilog implementation" of §5:
//!
//! * [`lilac_sim`](../lilac_sim/index.html) executes netlists cycle by cycle,
//! * [`lilac_synth`](../lilac_synth/index.html) estimates LUTs, registers and
//!   maximum frequency,
//! * [`verilog`] renders them as synthesizable Verilog text.
//!
//! # Example
//!
//! ```
//! use lilac_ir::{Netlist, NodeKind};
//!
//! // A 2-cycle delay line: out = reg(reg(in)).
//! let mut n = Netlist::new("delay2");
//! let i = n.add_input("i", 8);
//! let r1 = n.add_node(NodeKind::Reg, vec![i], 8, "r1");
//! let r2 = n.add_node(NodeKind::Reg, vec![r1], 8, "r2");
//! n.add_output("o", r2);
//! assert_eq!(n.node_count(), 3);
//! assert!(n.validate().is_ok());
//! ```

pub mod netlist;
pub mod verilog;

pub use netlist::{mask, pipe_value, Netlist, Node, NodeId, NodeKind, PipeOp};
pub use verilog::{emit_verilog, VERILOG_KEYWORDS};
