//! Flat netlists of hardware primitives.

use lilac_util::define_index;
use lilac_util::idx::IndexVec;
use std::collections::HashMap;

define_index!(NodeId, "n");

/// Operations implemented by externally generated pipelined cores.
///
/// These stand in for the modules produced by FloPoCo, Vivado IP, Aetherling,
/// XLS, Spiral, and PipelineC: a fixed-function datapath with a known
/// latency and initiation interval. The simulator gives them a functional
/// model (integer arithmetic pushed through a delay line) and the synthesis
/// model charges them area according to the operation and bit width.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PipeOp {
    /// Floating-point (or fixed-point) addition core.
    FAdd,
    /// Floating-point (or fixed-point) multiplication core.
    FMul,
    /// Integer multiplier core.
    IntMul,
    /// Divider core.
    Div,
    /// A 4×4 convolution core that accepts `par` elements per cycle.
    Conv {
        /// Elements accepted per transaction.
        par: u32,
    },
    /// A streaming FFT butterfly stage.
    Fft {
        /// Number of points.
        points: u32,
    },
    /// A dot-product / MAC core (used by the BLAS designs).
    Mac,
}

impl PipeOp {
    /// Short mnemonic used in node names and Verilog comments.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PipeOp::FAdd => "fadd",
            PipeOp::FMul => "fmul",
            PipeOp::IntMul => "imul",
            PipeOp::Div => "div",
            PipeOp::Conv { .. } => "conv",
            PipeOp::Fft { .. } => "fft",
            PipeOp::Mac => "mac",
        }
    }
}

/// A primitive node. Every node produces exactly one output value of
/// [`Node::width`] bits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// A module input; the payload is the index into [`Netlist::inputs`].
    Input(usize),
    /// A constant value.
    Const(u64),
    /// A single-cycle register.
    Reg,
    /// A register with a synchronous enable (second input, 1 bit).
    RegEn,
    /// An `n`-cycle delay line (equivalent to `n` chained registers).
    /// `Delay(0)` is a combinational passthrough — see
    /// [`NodeKind::pipeline_depth`].
    Delay(u32),
    /// Integer addition (two inputs).
    Add,
    /// Integer subtraction (two inputs).
    Sub,
    /// Combinational integer multiplication (two inputs).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (one input).
    Not,
    /// Equality comparison (two inputs, 1-bit result).
    Eq,
    /// Unsigned less-than comparison (two inputs, 1-bit result).
    Lt,
    /// Two-way multiplexer: inputs are `[sel, a, b]`, output is `a` when
    /// `sel` is non-zero and `b` otherwise.
    Mux,
    /// Slice `[lo, lo+width)` of the single input.
    Slice {
        /// Low bit index.
        lo: u32,
    },
    /// Concatenation of all inputs (first input is most significant).
    Concat,
    /// An externally generated pipelined core with the given latency and
    /// initiation interval. A `latency` of 0 makes the core combinational —
    /// see [`NodeKind::pipeline_depth`].
    PipelinedOp {
        /// Operation implemented by the core.
        op: PipeOp,
        /// Cycles from input to output.
        latency: u32,
        /// Minimum cycles between accepted inputs.
        ii: u32,
    },
}

impl NodeKind {
    /// Number of clocked stages between the node's operands and its output.
    ///
    /// This is **the** zero-latency contract shared by every consumer of the
    /// IR: the cycle-accurate simulator (`lilac-sim`), the Verilog backend
    /// ([`crate::emit_verilog`]), and the in-repo Verilog simulator
    /// (`lilac-vsim`) all derive their sequential behaviour from this one
    /// number. In particular, `Delay(0)` and `PipelinedOp { latency: 0, .. }`
    /// have depth 0 and are *combinational passthroughs*: their output equals
    /// the (functionally evaluated) operands in the same cycle, they
    /// contribute no registers, and a feedback loop through them is a
    /// combinational cycle.
    pub fn pipeline_depth(&self) -> u32 {
        match self {
            NodeKind::Reg | NodeKind::RegEn => 1,
            NodeKind::Delay(n) => *n,
            NodeKind::PipelinedOp { latency, .. } => *latency,
            _ => 0,
        }
    }

    /// True if the node holds state across clock cycles (i.e. its
    /// [`pipeline_depth`](NodeKind::pipeline_depth) is non-zero).
    pub fn is_sequential(&self) -> bool {
        self.pipeline_depth() > 0
    }
}

/// A node in a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// The primitive operation.
    pub kind: NodeKind,
    /// Input connections, in operand order.
    pub inputs: Vec<NodeId>,
    /// Output bit width.
    pub width: u32,
    /// A debug name (instance path from elaboration).
    pub name: String,
}

/// A named module input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Bit width.
    pub width: u32,
}

/// A flat netlist: primitive nodes plus named inputs and outputs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    /// Declared inputs.
    pub inputs: Vec<PortDecl>,
    /// Declared outputs and the nodes that drive them.
    pub outputs: Vec<(PortDecl, NodeId)>,
    nodes: IndexVec<NodeId, Node>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            nodes: IndexVec::new(),
        }
    }

    /// Declares a module input and returns the node representing it.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) -> NodeId {
        let name = name.into();
        let index = self.inputs.len();
        self.inputs.push(PortDecl { name: name.clone(), width });
        self.nodes.push(Node { kind: NodeKind::Input(index), inputs: Vec::new(), width, name })
    }

    /// Adds a node.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        inputs: Vec<NodeId>,
        width: u32,
        name: impl Into<String>,
    ) -> NodeId {
        self.nodes.push(Node { kind, inputs, width, name: name.into() })
    }

    /// Adds a constant node.
    pub fn add_const(&mut self, value: u64, width: u32) -> NodeId {
        self.add_node(NodeKind::Const(value), Vec::new(), width, format!("const_{value}"))
    }

    /// Declares a module output driven by `node`.
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        let width = self.nodes[node].width;
        self.outputs.push((PortDecl { name: name.into(), width }, node));
    }

    /// Returns the node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Replaces the operand list of an existing node. Used to close feedback
    /// loops (counters, FSM state registers) after the downstream
    /// combinational logic has been created.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_inputs(&mut self, id: NodeId, inputs: Vec<NodeId>) {
        self.nodes[id].inputs = inputs;
    }

    /// Renames the module.
    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter_enumerated()
    }

    /// Number of nodes (including inputs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of sequential (state-holding) nodes.
    pub fn sequential_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_sequential()).count()
    }

    /// Looks up the node driving a named output.
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs.iter().find(|(p, _)| p.name == name).map(|(_, id)| *id)
    }

    /// Looks up an input node by name.
    pub fn input(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter_enumerated().find_map(|(id, n)| match &n.kind {
            NodeKind::Input(idx) if self.inputs[*idx].name == name => Some(id),
            _ => None,
        })
    }

    /// Checks structural invariants: input references in range, operand
    /// counts consistent with the node kinds, outputs driven by existing
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in self.nodes.iter_enumerated() {
            for &input in &node.inputs {
                if input.0 as usize >= self.nodes.len() {
                    return Err(format!("node {id} ({}) reads missing node {input}", node.name));
                }
            }
            let arity: Option<usize> = match &node.kind {
                NodeKind::Input(_) | NodeKind::Const(_) => Some(0),
                NodeKind::Reg | NodeKind::Delay(_) | NodeKind::Not | NodeKind::Slice { .. } => {
                    Some(1)
                }
                NodeKind::RegEn => Some(2),
                NodeKind::Add
                | NodeKind::Sub
                | NodeKind::Mul
                | NodeKind::And
                | NodeKind::Or
                | NodeKind::Xor
                | NodeKind::Eq
                | NodeKind::Lt => Some(2),
                NodeKind::Mux => Some(3),
                NodeKind::Concat | NodeKind::PipelinedOp { .. } => None,
            };
            if let Some(expected) = arity {
                if node.inputs.len() != expected {
                    return Err(format!(
                        "node {id} ({}) expects {expected} operand(s) but has {}",
                        node.name,
                        node.inputs.len()
                    ));
                }
            }
            if let NodeKind::Input(idx) = node.kind {
                if idx >= self.inputs.len() {
                    return Err(format!("node {id} refers to missing input #{idx}"));
                }
            }
            if node.width == 0 {
                return Err(format!("node {id} ({}) has zero width", node.name));
            }
        }
        for (port, id) in &self.outputs {
            if id.0 as usize >= self.nodes.len() {
                return Err(format!("output `{}` driven by missing node {id}", port.name));
            }
        }
        Ok(())
    }

    /// A topological order over the *combinational* edges: registers and
    /// pipelined cores break cycles (their inputs are sampled at the end of a
    /// cycle). Returns `None` if a purely combinational cycle exists.
    pub fn combinational_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        // Edges: from input operand -> node, but only when the node is
        // combinational (sequential nodes read their operands "later").
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter_enumerated() {
            if node.kind.is_sequential() {
                continue;
            }
            for &input in &node.inputs {
                dependents[input.0 as usize].push(id.0 as usize);
                indegree[id.0 as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(NodeId(i as u32));
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Merges another netlist into this one as a sub-block, connecting the
    /// callee's inputs to the given driver nodes. Returns a map from the
    /// callee's output names to the corresponding nodes in `self`.
    ///
    /// This is how elaboration flattens the module hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `input_drivers` does not provide a driver for every input of
    /// `other`.
    pub fn inline(
        &mut self,
        other: &Netlist,
        input_drivers: &HashMap<String, NodeId>,
        prefix: &str,
    ) -> HashMap<String, NodeId> {
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        // Insert nodes in id order so operand references are already mapped.
        for (old_id, node) in other.nodes.iter_enumerated() {
            let new_id = match &node.kind {
                NodeKind::Input(idx) => {
                    let port = &other.inputs[*idx];
                    *input_drivers.get(&port.name).unwrap_or_else(|| {
                        panic!(
                            "inline: missing driver for input `{}` of `{}`",
                            port.name, other.name
                        )
                    })
                }
                kind => {
                    let inputs = node.inputs.iter().map(|i| remap[i]).collect();
                    self.add_node(
                        kind.clone(),
                        inputs,
                        node.width,
                        format!("{prefix}.{}", node.name),
                    )
                }
            };
            remap.insert(old_id, new_id);
        }
        other.outputs.iter().map(|(port, id)| (port.name.clone(), remap[id])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_netlist() -> Netlist {
        let mut n = Netlist::new("addreg");
        let a = n.add_input("a", 16);
        let b = n.add_input("b", 16);
        let sum = n.add_node(NodeKind::Add, vec![a, b], 16, "sum");
        let reg = n.add_node(NodeKind::Reg, vec![sum], 16, "sum_r");
        n.add_output("o", reg);
        n
    }

    #[test]
    fn build_and_validate() {
        let n = adder_netlist();
        assert_eq!(n.node_count(), 4);
        assert_eq!(n.sequential_count(), 1);
        assert!(n.validate().is_ok());
        assert!(n.output("o").is_some());
        assert!(n.output("missing").is_none());
        assert_eq!(n.input("a"), Some(NodeId(0)));
    }

    #[test]
    fn validation_catches_bad_arity_and_width() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a", 8);
        n.add_node(NodeKind::Add, vec![a], 8, "half_add");
        assert!(n.validate().unwrap_err().contains("expects 2 operand"));

        let mut n = Netlist::new("bad2");
        let a = n.add_input("a", 8);
        n.add_node(NodeKind::Reg, vec![a], 0, "zero_width");
        assert!(n.validate().unwrap_err().contains("zero width"));
    }

    #[test]
    fn combinational_order_handles_register_cycles() {
        // A counter: reg feeds an adder that feeds the reg back — legal
        // because the cycle goes through a register.
        let mut n = Netlist::new("counter");
        let one = n.add_const(1, 8);
        // Create the register first with a placeholder input, then patch.
        let reg = n.add_node(NodeKind::Reg, vec![one], 8, "count");
        let _next = n.add_node(NodeKind::Add, vec![reg, one], 8, "next");
        // Rebuild with the proper feedback edge.
        let mut m = Netlist::new("counter");
        let one = m.add_const(1, 8);
        let reg_placeholder = m.add_node(NodeKind::Reg, vec![one], 8, "count");
        let next = m.add_node(NodeKind::Add, vec![reg_placeholder, one], 8, "next");
        // Manually rewire the register to read `next` (feedback).
        {
            let node = &mut m.nodes[reg_placeholder];
            node.inputs = vec![next];
        }
        m.add_output("o", reg_placeholder);
        assert!(m.validate().is_ok());
        assert!(m.combinational_order().is_some());
        let _ = (n, reg, next);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("comb_loop");
        let a = n.add_input("a", 8);
        let x = n.add_node(NodeKind::Add, vec![a, a], 8, "x");
        let y = n.add_node(NodeKind::Add, vec![x, a], 8, "y");
        // Rewire x to read y, forming a combinational loop.
        n.nodes[x].inputs = vec![y, a];
        assert!(n.combinational_order().is_none());
    }

    #[test]
    fn inline_flattens_hierarchy() {
        let inner = adder_netlist();
        let mut outer = Netlist::new("top");
        let x = outer.add_input("x", 16);
        let y = outer.add_input("y", 16);
        let mut drivers = HashMap::new();
        drivers.insert("a".to_string(), x);
        drivers.insert("b".to_string(), y);
        let outs = outer.inline(&inner, &drivers, "u0");
        outer.add_output("z", outs["o"]);
        assert!(outer.validate().is_ok());
        // Input nodes of the inner module are not duplicated.
        assert_eq!(outer.node_count(), 4);
        assert!(outer.iter().any(|(_, n)| n.name == "u0.sum_r"));
    }

    #[test]
    #[should_panic(expected = "missing driver")]
    fn inline_missing_driver_panics() {
        let inner = adder_netlist();
        let mut outer = Netlist::new("top");
        let x = outer.add_input("x", 16);
        let mut drivers = HashMap::new();
        drivers.insert("a".to_string(), x);
        outer.inline(&inner, &drivers, "u0");
    }

    #[test]
    fn pipelined_op_is_sequential() {
        assert!(NodeKind::PipelinedOp { op: PipeOp::FAdd, latency: 4, ii: 1 }.is_sequential());
        assert!(!NodeKind::Add.is_sequential());
        assert_eq!(PipeOp::Conv { par: 4 }.mnemonic(), "conv");
    }

    #[test]
    fn pipeline_depth_contract() {
        // The shared zero-latency contract: depth equals the declared
        // latency, and zero-depth nodes are combinational.
        assert_eq!(NodeKind::Reg.pipeline_depth(), 1);
        assert_eq!(NodeKind::RegEn.pipeline_depth(), 1);
        assert_eq!(NodeKind::Delay(3).pipeline_depth(), 3);
        assert_eq!(NodeKind::Delay(0).pipeline_depth(), 0);
        assert!(!NodeKind::Delay(0).is_sequential());
        let zero_lat = NodeKind::PipelinedOp { op: PipeOp::FMul, latency: 0, ii: 1 };
        assert_eq!(zero_lat.pipeline_depth(), 0);
        assert!(!zero_lat.is_sequential());
        assert_eq!(NodeKind::Mux.pipeline_depth(), 0);
    }
}
