//! Flat netlists of hardware primitives.

use lilac_util::define_index;
use lilac_util::idx::IndexVec;
use std::collections::HashMap;

define_index!(NodeId, "n");

/// Masks `value` to `width` bits (`width >= 64` passes through).
///
/// This is **the** canonical bit-mask of the workspace. Every consumer that
/// narrows a value to a declared width — the netlist simulator
/// (`lilac-sim`), the Verilog-subset simulator (`lilac-vsim`), the fuzzer's
/// scenario interpreter, and the optimizer's constant folder — goes through
/// this one function, so their width semantics cannot drift apart.
#[inline]
pub fn mask(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Functional model of a pipelined core's datapath: the combinational value
/// the core computes before its `latency`-deep output pipe (shared by the
/// cycle-accurate simulator and the constant folder, so "fold" and
/// "simulate" are the same function by construction).
///
/// Missing operands read as 0; the caller masks the result to the node
/// width.
pub fn pipe_value(op: PipeOp, operands: &[u64]) -> u64 {
    let get = |i: usize| operands.get(i).copied().unwrap_or(0);
    match op {
        PipeOp::FAdd => get(0).wrapping_add(get(1)),
        PipeOp::FMul | PipeOp::IntMul => get(0).wrapping_mul(get(1)),
        PipeOp::Div => get(0).checked_div(get(1)).unwrap_or(0),
        PipeOp::Mac => get(0).wrapping_mul(get(1)).wrapping_add(get(2)),
        // The convolution and FFT cores are modelled as a sum of their lanes;
        // the GBP evaluation only relies on their latency/II behaviour.
        PipeOp::Conv { .. } | PipeOp::Fft { .. } => {
            operands.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        }
    }
}

/// Operations implemented by externally generated pipelined cores.
///
/// These stand in for the modules produced by FloPoCo, Vivado IP, Aetherling,
/// XLS, Spiral, and PipelineC: a fixed-function datapath with a known
/// latency and initiation interval. The simulator gives them a functional
/// model (integer arithmetic pushed through a delay line) and the synthesis
/// model charges them area according to the operation and bit width.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PipeOp {
    /// Floating-point (or fixed-point) addition core.
    FAdd,
    /// Floating-point (or fixed-point) multiplication core.
    FMul,
    /// Integer multiplier core.
    IntMul,
    /// Divider core.
    Div,
    /// A 4×4 convolution core that accepts `par` elements per cycle.
    Conv {
        /// Elements accepted per transaction.
        par: u32,
    },
    /// A streaming FFT butterfly stage.
    Fft {
        /// Number of points.
        points: u32,
    },
    /// A dot-product / MAC core (used by the BLAS designs).
    Mac,
}

impl PipeOp {
    /// Short mnemonic used in node names and Verilog comments.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PipeOp::FAdd => "fadd",
            PipeOp::FMul => "fmul",
            PipeOp::IntMul => "imul",
            PipeOp::Div => "div",
            PipeOp::Conv { .. } => "conv",
            PipeOp::Fft { .. } => "fft",
            PipeOp::Mac => "mac",
        }
    }
}

/// A primitive node. Every node produces exactly one output value of
/// [`Node::width`] bits.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// A module input; the payload is the index into [`Netlist::inputs`].
    Input(usize),
    /// A constant value.
    Const(u64),
    /// A single-cycle register.
    Reg,
    /// A register with a synchronous enable (second input, 1 bit).
    RegEn,
    /// An `n`-cycle delay line (equivalent to `n` chained registers).
    /// `Delay(0)` is a combinational passthrough — see
    /// [`NodeKind::pipeline_depth`].
    Delay(u32),
    /// Integer addition (two inputs).
    Add,
    /// Integer subtraction (two inputs).
    Sub,
    /// Combinational integer multiplication (two inputs).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (one input).
    Not,
    /// Equality comparison (two inputs, 1-bit result).
    Eq,
    /// Unsigned less-than comparison (two inputs, 1-bit result).
    Lt,
    /// Two-way multiplexer: inputs are `[sel, a, b]`, output is `a` when
    /// `sel` is non-zero and `b` otherwise.
    Mux,
    /// Slice `[lo, lo+width)` of the single input.
    Slice {
        /// Low bit index.
        lo: u32,
    },
    /// Concatenation of all inputs (first input is most significant).
    Concat,
    /// An externally generated pipelined core with the given latency and
    /// initiation interval. A `latency` of 0 makes the core combinational —
    /// see [`NodeKind::pipeline_depth`].
    PipelinedOp {
        /// Operation implemented by the core.
        op: PipeOp,
        /// Cycles from input to output.
        latency: u32,
        /// Minimum cycles between accepted inputs.
        ii: u32,
    },
}

impl NodeKind {
    /// Number of clocked stages between the node's operands and its output.
    ///
    /// This is **the** zero-latency contract shared by every consumer of the
    /// IR: the cycle-accurate simulator (`lilac-sim`), the Verilog backend
    /// ([`crate::emit_verilog`]), and the in-repo Verilog simulator
    /// (`lilac-vsim`) all derive their sequential behaviour from this one
    /// number. In particular, `Delay(0)` and `PipelinedOp { latency: 0, .. }`
    /// have depth 0 and are *combinational passthroughs*: their output equals
    /// the (functionally evaluated) operands in the same cycle, they
    /// contribute no registers, and a feedback loop through them is a
    /// combinational cycle.
    pub fn pipeline_depth(&self) -> u32 {
        match self {
            NodeKind::Reg | NodeKind::RegEn => 1,
            NodeKind::Delay(n) => *n,
            NodeKind::PipelinedOp { latency, .. } => *latency,
            _ => 0,
        }
    }

    /// True if the node holds state across clock cycles (i.e. its
    /// [`pipeline_depth`](NodeKind::pipeline_depth) is non-zero).
    pub fn is_sequential(&self) -> bool {
        self.pipeline_depth() > 0
    }

    /// The combinational function of this node over concrete operand values,
    /// masked to `width` — or `None` for inputs and state-holding nodes,
    /// whose value is not a function of this cycle's operands.
    ///
    /// `operands` pairs each operand's value with that operand's width; the
    /// values must already be masked to their widths (as the simulator's
    /// value vector and [`Netlist::eval_const`] guarantee). This is the one
    /// evaluation semantics shared by `lilac-sim` and the optimizer's
    /// constant folder: folding a node and simulating it are the same
    /// computation by construction.
    ///
    /// # Panics
    ///
    /// Panics if `operands` is shorter than the node kind's arity (validate
    /// the netlist first).
    pub fn comb_value(&self, operands: &[(u64, u32)], width: u32) -> Option<u64> {
        let v = |i: usize| operands[i].0;
        let raw = match self {
            NodeKind::Input(_) | NodeKind::Reg | NodeKind::RegEn => return None,
            NodeKind::Const(c) => *c,
            // Per the `pipeline_depth` contract, depth-0 nodes pass their
            // (functionally evaluated) operands straight through.
            NodeKind::Delay(0) => v(0),
            NodeKind::Delay(_) => return None,
            NodeKind::PipelinedOp { op, latency: 0, .. } => {
                // Stack buffer keeps the simulator's hot loop allocation-free
                // (no core takes anywhere near 16 operands; the Vec fallback
                // is for pathological hand-built netlists only).
                let mut buf = [0u64; 16];
                if operands.len() <= buf.len() {
                    for (slot, operand) in buf.iter_mut().zip(operands) {
                        *slot = operand.0;
                    }
                    pipe_value(*op, &buf[..operands.len()])
                } else {
                    let vals: Vec<u64> = operands.iter().map(|o| o.0).collect();
                    pipe_value(*op, &vals)
                }
            }
            NodeKind::PipelinedOp { .. } => return None,
            NodeKind::Add => v(0).wrapping_add(v(1)),
            NodeKind::Sub => v(0).wrapping_sub(v(1)),
            NodeKind::Mul => v(0).wrapping_mul(v(1)),
            NodeKind::And => v(0) & v(1),
            NodeKind::Or => v(0) | v(1),
            NodeKind::Xor => v(0) ^ v(1),
            NodeKind::Not => !v(0),
            NodeKind::Eq => (v(0) == v(1)) as u64,
            NodeKind::Lt => (v(0) < v(1)) as u64,
            NodeKind::Mux => {
                if v(0) != 0 {
                    v(1)
                } else {
                    v(2)
                }
            }
            // `lo >= 64` reads past any representable operand: constant 0
            // (a plain `>>` would overflow the shift at the width-64 edge).
            NodeKind::Slice { lo } => {
                if *lo >= 64 {
                    0
                } else {
                    v(0) >> lo
                }
            }
            NodeKind::Concat => {
                let mut acc = 0u64;
                for &(value, w) in operands {
                    // A 64-bit-wide operand fills the accumulator outright;
                    // `acc << 64` would overflow the shift. Anything already
                    // accumulated sits above bit 63 and is truncated by the
                    // result mask regardless.
                    acc = if w >= 64 { mask(value, w) } else { (acc << w) | mask(value, w) };
                }
                acc
            }
        };
        Some(mask(raw, width))
    }
}

/// Per-node result of [`Netlist::combinational_slack`]: the lengths (in
/// combinational nodes) of the longest purely combinational paths ending at
/// and leaving a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CombSlack {
    /// Combinational nodes on the longest combinational path ending at this
    /// node, counting the node itself when it is combinational.
    pub depth_in: u32,
    /// Combinational nodes on the longest combinational path leaving this
    /// node, not counting the node itself.
    pub depth_out: u32,
}

/// A node in a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// The primitive operation.
    pub kind: NodeKind,
    /// Input connections, in operand order.
    pub inputs: Vec<NodeId>,
    /// Output bit width.
    pub width: u32,
    /// A debug name (instance path from elaboration).
    pub name: String,
}

/// A named module input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Bit width.
    pub width: u32,
}

/// A flat netlist: primitive nodes plus named inputs and outputs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    /// Declared inputs.
    pub inputs: Vec<PortDecl>,
    /// Declared outputs and the nodes that drive them.
    pub outputs: Vec<(PortDecl, NodeId)>,
    nodes: IndexVec<NodeId, Node>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            nodes: IndexVec::new(),
        }
    }

    /// Declares a module input and returns the node representing it.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) -> NodeId {
        let name = name.into();
        let index = self.inputs.len();
        self.inputs.push(PortDecl { name: name.clone(), width });
        self.nodes.push(Node { kind: NodeKind::Input(index), inputs: Vec::new(), width, name })
    }

    /// Adds a node.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        inputs: Vec<NodeId>,
        width: u32,
        name: impl Into<String>,
    ) -> NodeId {
        self.nodes.push(Node { kind, inputs, width, name: name.into() })
    }

    /// Adds a constant node. The value is masked to `width` at construction:
    /// a `Const` must always fit its declared width, because the simulator
    /// masks at evaluation while the Verilog backend emits the stored value
    /// as a sized literal verbatim — an oversized value would make the two
    /// disagree. [`Netlist::validate`] rejects oversized constants built by
    /// other means.
    pub fn add_const(&mut self, value: u64, width: u32) -> NodeId {
        let value = mask(value, width);
        self.add_node(NodeKind::Const(value), Vec::new(), width, format!("const_{value}"))
    }

    /// Declares a module output driven by `node`.
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        let width = self.nodes[node].width;
        self.outputs.push((PortDecl { name: name.into(), width }, node));
    }

    /// Returns the node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Replaces the operand list of an existing node. Used to close feedback
    /// loops (counters, FSM state registers) after the downstream
    /// combinational logic has been created.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_inputs(&mut self, id: NodeId, inputs: Vec<NodeId>) {
        self.nodes[id].inputs = inputs;
    }

    /// Mutable access to a node: the in-place rewrite primitive the
    /// optimizer's passes (`lilac-opt`) are built on. The caller is
    /// responsible for re-establishing the invariants [`Netlist::validate`]
    /// checks (operand arity, widths, constants fitting their widths).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Rewrites every operand edge and every output driver through `f`.
    /// `f` is applied once per edge (not transitively), so callers replacing
    /// chains of nodes must resolve their replacement map first.
    pub fn remap_operands(&mut self, f: impl Fn(NodeId) -> NodeId) {
        for node in self.nodes.iter_mut() {
            for input in &mut node.inputs {
                *input = f(*input);
            }
        }
        for (_, driver) in &mut self.outputs {
            *driver = f(*driver);
        }
    }

    /// Removes every node not marked live, compacting ids and rewriting all
    /// operand edges and output drivers. [`NodeKind::Input`] nodes are
    /// always retained regardless of `live` — ports are part of the module
    /// interface, and [`Netlist::inputs`] indices must stay valid. Returns
    /// the number of nodes removed.
    ///
    /// # Panics
    ///
    /// Panics if `live.len() != self.node_count()`, or if a retained node
    /// (or output) references a removed one — liveness must be closed under
    /// the operand relation before sweeping.
    pub fn retain_live(&mut self, live: &[bool]) -> usize {
        assert_eq!(live.len(), self.nodes.len(), "liveness vector length mismatch");
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut kept: IndexVec<NodeId, Node> = IndexVec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter_enumerated() {
            if live[id.0 as usize] || matches!(node.kind, NodeKind::Input(_)) {
                remap[id.0 as usize] = Some(kept.push(node.clone()));
            }
        }
        let removed = self.nodes.len() - kept.len();
        let resolve = |id: NodeId, what: &str| {
            remap[id.0 as usize]
                .unwrap_or_else(|| panic!("retain_live: {what} references removed node {id}"))
        };
        for node in kept.iter_mut() {
            for input in &mut node.inputs {
                *input = resolve(*input, "a live node");
            }
        }
        for (port, driver) in &mut self.outputs {
            *driver = resolve(*driver, &format!("output `{}`", port.name));
        }
        self.nodes = kept;
        removed
    }

    /// The compile-time-constant value of a node, if it has one: a `Const`
    /// node's (masked) value, or the value of a combinational node all of
    /// whose operands are `Const` nodes, evaluated through
    /// [`NodeKind::comb_value`] — the same function the simulator uses, so
    /// constant folding cannot diverge from simulation.
    pub fn eval_const(&self, id: NodeId) -> Option<u64> {
        let node = &self.nodes[id];
        if let NodeKind::Const(v) = node.kind {
            return Some(mask(v, node.width));
        }
        let mut operands = Vec::with_capacity(node.inputs.len());
        for &input in &node.inputs {
            let op = &self.nodes[input];
            match op.kind {
                NodeKind::Const(v) => operands.push((mask(v, op.width), op.width)),
                _ => return None,
            }
        }
        node.kind.comb_value(&operands, node.width)
    }

    /// Renames the module.
    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter_enumerated()
    }

    /// Number of nodes (including inputs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of sequential (state-holding) nodes.
    pub fn sequential_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_sequential()).count()
    }

    /// Looks up the node driving a named output.
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs.iter().find(|(p, _)| p.name == name).map(|(_, id)| *id)
    }

    /// Looks up an input node by name.
    pub fn input(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter_enumerated().find_map(|(id, n)| match &n.kind {
            NodeKind::Input(idx) if self.inputs[*idx].name == name => Some(id),
            _ => None,
        })
    }

    /// Checks structural invariants: input references in range, operand
    /// counts consistent with the node kinds, outputs driven by existing
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in self.nodes.iter_enumerated() {
            for &input in &node.inputs {
                if input.0 as usize >= self.nodes.len() {
                    return Err(format!("node {id} ({}) reads missing node {input}", node.name));
                }
            }
            let arity: Option<usize> = match &node.kind {
                NodeKind::Input(_) | NodeKind::Const(_) => Some(0),
                NodeKind::Reg | NodeKind::Delay(_) | NodeKind::Not | NodeKind::Slice { .. } => {
                    Some(1)
                }
                NodeKind::RegEn => Some(2),
                NodeKind::Add
                | NodeKind::Sub
                | NodeKind::Mul
                | NodeKind::And
                | NodeKind::Or
                | NodeKind::Xor
                | NodeKind::Eq
                | NodeKind::Lt => Some(2),
                NodeKind::Mux => Some(3),
                NodeKind::Concat | NodeKind::PipelinedOp { .. } => None,
            };
            if let Some(expected) = arity {
                if node.inputs.len() != expected {
                    return Err(format!(
                        "node {id} ({}) expects {expected} operand(s) but has {}",
                        node.name,
                        node.inputs.len()
                    ));
                }
            }
            if let NodeKind::Input(idx) = node.kind {
                if idx >= self.inputs.len() {
                    return Err(format!("node {id} refers to missing input #{idx}"));
                }
            }
            if node.width == 0 {
                return Err(format!("node {id} ({}) has zero width", node.name));
            }
            if let NodeKind::Const(v) = node.kind {
                if mask(v, node.width) != v {
                    return Err(format!(
                        "node {id} ({}) holds constant {v} which does not fit its {} bit(s)",
                        node.name, node.width
                    ));
                }
            }
        }
        for (port, id) in &self.outputs {
            if id.0 as usize >= self.nodes.len() {
                return Err(format!("output `{}` driven by missing node {id}", port.name));
            }
        }
        Ok(())
    }

    /// A topological order over the *combinational* edges: registers and
    /// pipelined cores break cycles (their inputs are sampled at the end of a
    /// cycle). Returns `None` if a purely combinational cycle exists.
    pub fn combinational_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        // Edges: from input operand -> node, but only when the node is
        // combinational (sequential nodes read their operands "later").
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter_enumerated() {
            if node.kind.is_sequential() {
                continue;
            }
            for &input in &node.inputs {
                dependents[input.0 as usize].push(id.0 as usize);
                indegree[id.0 as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(NodeId(i as u32));
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Consumer table: for every node, the nodes that read it, one entry
    /// per operand edge (a node reading the same operand twice appears
    /// twice). This is the reverse of the operand relation; the timing
    /// traversals ([`Netlist::output_min_latencies`]) and the retimer's
    /// legality checks (`lilac-opt`) share this one definition so the edge
    /// semantics cannot drift between them.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.nodes.iter_enumerated() {
            for input in &node.inputs {
                consumers[input.0 as usize].push(id);
            }
        }
        consumers
    }

    /// Per-node combinational slack: for every node, the number of
    /// *combinational* nodes on the longest purely combinational path ending
    /// at it (`depth_in`, counting the node itself when it is combinational)
    /// and the number on the longest combinational path leaving it
    /// (`depth_out`, not counting the node itself). Sequential nodes,
    /// inputs, and constants have `depth_in = 0`; a node whose consumers are
    /// all sequential (or that drives only output ports) has
    /// `depth_out = 0`.
    ///
    /// This is the structural half of a timing query: a register sits "deep"
    /// in combinational logic exactly when the adjacent `depth_in`/
    /// `depth_out` are large, which is what a retiming pass uses to find
    /// cuts worth moving state across (`lilac-opt`'s `retime`; the
    /// nanosecond-weighted version lives in `lilac-synth`).
    ///
    /// Returns `None` iff a purely combinational cycle exists (the same
    /// condition under which [`Netlist::combinational_order`] returns
    /// `None`).
    pub fn combinational_slack(&self) -> Option<Vec<CombSlack>> {
        let order = self.combinational_order()?;
        let n = self.nodes.len();
        let mut slack = vec![CombSlack { depth_in: 0, depth_out: 0 }; n];
        // Forward: longest chain of combinational nodes ending at each node.
        for &id in &order {
            let node = &self.nodes[id];
            if node.kind.is_sequential()
                || matches!(node.kind, NodeKind::Input(_) | NodeKind::Const(_))
            {
                continue;
            }
            let longest_in =
                node.inputs.iter().map(|i| slack[i.0 as usize].depth_in).max().unwrap_or(0);
            slack[id.0 as usize].depth_in = longest_in + 1;
        }
        // Backward: longest chain of combinational nodes reachable from each
        // node through combinational consumers.
        for &id in order.iter().rev() {
            let node = &self.nodes[id];
            if node.kind.is_sequential() {
                // A sequential node's operand edges are sampled at the clock
                // edge; no combinational path continues through it.
                continue;
            }
            let contribution = slack[id.0 as usize].depth_out + 1;
            for &input in &node.inputs {
                let s = &mut slack[input.0 as usize];
                s.depth_out = s.depth_out.max(contribution);
            }
        }
        Some(slack)
    }

    /// For every declared output, the minimum number of register stages on
    /// any path from a module input ([`NodeKind::Input`]) to that output —
    /// the earliest cycle at which an input can influence the output's
    /// value. `None` for an output unreachable from any input (a register
    /// ring, or a constant-fed pipeline: constant streams are
    /// time-invariant, so they carry no latency to measure).
    ///
    /// Retiming relocates registers along paths without ever changing any
    /// path's total register count, so this vector is a *retiming
    /// invariant*: `retime(n).output_min_latencies() ==
    /// n.output_min_latencies()` is the latency-preservation contract the
    /// seventh differential oracle (and `figure8 --check`) pins.
    pub fn output_min_latencies(&self) -> Vec<(String, Option<u64>)> {
        // Dijkstra over the operand graph read consumer-ward, with per-node
        // weight `pipeline_depth` (all weights >= 0): reaching a consumer
        // costs the consumer's own register depth.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.nodes.len();
        let consumers = self.consumers();
        let mut dist: Vec<Option<u64>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (id, node) in self.nodes.iter_enumerated() {
            if matches!(node.kind, NodeKind::Input(_)) {
                dist[id.0 as usize] = Some(0);
                heap.push(Reverse((0, id.0 as usize)));
            }
        }
        while let Some(Reverse((d, i))) = heap.pop() {
            if dist[i] != Some(d) {
                continue; // superseded entry
            }
            for &c in &consumers[i] {
                let c = c.0 as usize;
                let cost = d + self.nodes[NodeId(c as u32)].kind.pipeline_depth() as u64;
                if dist[c].is_none_or(|cur| cost < cur) {
                    dist[c] = Some(cost);
                    heap.push(Reverse((cost, c)));
                }
            }
        }
        self.outputs.iter().map(|(p, id)| (p.name.clone(), dist[id.0 as usize])).collect()
    }

    /// Merges another netlist into this one as a sub-block, connecting the
    /// callee's inputs to the given driver nodes. Returns a map from the
    /// callee's output names to the corresponding nodes in `self`.
    ///
    /// This is how elaboration flattens the module hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `input_drivers` does not provide a driver for every input of
    /// `other`, or if a driver's width differs from the width the callee
    /// declares for that port (a silent mismatch would flatten into a
    /// mis-widthed design whose simulation and emission disagree).
    pub fn inline(
        &mut self,
        other: &Netlist,
        input_drivers: &HashMap<String, NodeId>,
        prefix: &str,
    ) -> HashMap<String, NodeId> {
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        // Two passes so sequential feedback loops (operands with a larger id
        // than their consumer) inline correctly: first create every node,
        // then wire the remapped operands.
        for (old_id, node) in other.nodes.iter_enumerated() {
            let new_id = match &node.kind {
                NodeKind::Input(idx) => {
                    let port = &other.inputs[*idx];
                    let driver = *input_drivers.get(&port.name).unwrap_or_else(|| {
                        panic!(
                            "inline: missing driver for input `{}` of `{}`",
                            port.name, other.name
                        )
                    });
                    let got = self.nodes[driver].width;
                    if got != port.width {
                        panic!(
                            "inline: driver for input `{}` of `{}` is {got} bit(s) wide but the \
                             port declares {} bit(s)",
                            port.name, other.name, port.width
                        );
                    }
                    driver
                }
                kind => self.add_node(
                    kind.clone(),
                    Vec::new(),
                    node.width,
                    format!("{prefix}.{}", node.name),
                ),
            };
            remap.insert(old_id, new_id);
        }
        for (old_id, node) in other.nodes.iter_enumerated() {
            if matches!(node.kind, NodeKind::Input(_)) {
                continue;
            }
            let inputs = node.inputs.iter().map(|i| remap[i]).collect();
            self.set_inputs(remap[&old_id], inputs);
        }
        other.outputs.iter().map(|(port, id)| (port.name.clone(), remap[id])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_netlist() -> Netlist {
        let mut n = Netlist::new("addreg");
        let a = n.add_input("a", 16);
        let b = n.add_input("b", 16);
        let sum = n.add_node(NodeKind::Add, vec![a, b], 16, "sum");
        let reg = n.add_node(NodeKind::Reg, vec![sum], 16, "sum_r");
        n.add_output("o", reg);
        n
    }

    #[test]
    fn build_and_validate() {
        let n = adder_netlist();
        assert_eq!(n.node_count(), 4);
        assert_eq!(n.sequential_count(), 1);
        assert!(n.validate().is_ok());
        assert!(n.output("o").is_some());
        assert!(n.output("missing").is_none());
        assert_eq!(n.input("a"), Some(NodeId(0)));
    }

    #[test]
    fn validation_catches_bad_arity_and_width() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a", 8);
        n.add_node(NodeKind::Add, vec![a], 8, "half_add");
        assert!(n.validate().unwrap_err().contains("expects 2 operand"));

        let mut n = Netlist::new("bad2");
        let a = n.add_input("a", 8);
        n.add_node(NodeKind::Reg, vec![a], 0, "zero_width");
        assert!(n.validate().unwrap_err().contains("zero width"));
    }

    #[test]
    fn combinational_order_handles_register_cycles() {
        // A counter: reg feeds an adder that feeds the reg back — legal
        // because the cycle goes through a register.
        let mut n = Netlist::new("counter");
        let one = n.add_const(1, 8);
        // Create the register first with a placeholder input, then patch.
        let reg = n.add_node(NodeKind::Reg, vec![one], 8, "count");
        let _next = n.add_node(NodeKind::Add, vec![reg, one], 8, "next");
        // Rebuild with the proper feedback edge.
        let mut m = Netlist::new("counter");
        let one = m.add_const(1, 8);
        let reg_placeholder = m.add_node(NodeKind::Reg, vec![one], 8, "count");
        let next = m.add_node(NodeKind::Add, vec![reg_placeholder, one], 8, "next");
        // Manually rewire the register to read `next` (feedback).
        {
            let node = &mut m.nodes[reg_placeholder];
            node.inputs = vec![next];
        }
        m.add_output("o", reg_placeholder);
        assert!(m.validate().is_ok());
        assert!(m.combinational_order().is_some());
        let _ = (n, reg, next);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("comb_loop");
        let a = n.add_input("a", 8);
        let x = n.add_node(NodeKind::Add, vec![a, a], 8, "x");
        let y = n.add_node(NodeKind::Add, vec![x, a], 8, "y");
        // Rewire x to read y, forming a combinational loop.
        n.nodes[x].inputs = vec![y, a];
        assert!(n.combinational_order().is_none());
    }

    #[test]
    fn inline_flattens_hierarchy() {
        let inner = adder_netlist();
        let mut outer = Netlist::new("top");
        let x = outer.add_input("x", 16);
        let y = outer.add_input("y", 16);
        let mut drivers = HashMap::new();
        drivers.insert("a".to_string(), x);
        drivers.insert("b".to_string(), y);
        let outs = outer.inline(&inner, &drivers, "u0");
        outer.add_output("z", outs["o"]);
        assert!(outer.validate().is_ok());
        // Input nodes of the inner module are not duplicated.
        assert_eq!(outer.node_count(), 4);
        assert!(outer.iter().any(|(_, n)| n.name == "u0.sum_r"));
    }

    #[test]
    #[should_panic(expected = "missing driver")]
    fn inline_missing_driver_panics() {
        let inner = adder_netlist();
        let mut outer = Netlist::new("top");
        let x = outer.add_input("x", 16);
        let mut drivers = HashMap::new();
        drivers.insert("a".to_string(), x);
        outer.inline(&inner, &drivers, "u0");
    }

    #[test]
    fn oversized_const_is_masked_at_construction_and_rejected_by_validate() {
        // Regression: `add_const(255, 4)` used to store the raw 255.
        // `lilac-sim` masked it at evaluation (reading 15) while
        // `emit_verilog` rendered the stored value verbatim as `4'd255` —
        // the sized literal a downstream Verilog tool truncates (or warns
        // about) on its own terms, so the two backends could disagree.
        let mut n = Netlist::new("c");
        let c = n.add_const(255, 4);
        assert_eq!(n.node(c).kind, NodeKind::Const(15), "masked at construction");
        assert!(n.validate().is_ok());
        assert_eq!(n.eval_const(c), Some(15));

        // Reconstruct the pre-fix netlist (raw `add_node`, bypassing the
        // mask) and pin the divergent emission: the stored 255 does not fit
        // 4 bits, the emitted literal says `4'd255`, and the simulator
        // would have read 15 — validate now rejects the netlist outright.
        let mut bad = Netlist::new("c");
        let c = bad.add_node(NodeKind::Const(255), Vec::new(), 4, "const_255");
        bad.add_output("o", c);
        let v = crate::verilog::emit_verilog(&bad);
        assert!(v.contains("assign n0 = 4'd255;"), "the divergent emission:\n{v}");
        let err = bad.validate().unwrap_err();
        assert!(err.contains("constant 255"), "{err}");
        assert!(err.contains("4 bit(s)"), "{err}");
    }

    #[test]
    #[should_panic(expected = "driver for input `a` of `addreg` is 8 bit(s) wide")]
    fn inline_rejects_narrow_driver() {
        let inner = adder_netlist(); // ports are 16 bits wide
        let mut outer = Netlist::new("top");
        let x = outer.add_input("x", 8);
        let y = outer.add_input("y", 16);
        let drivers = HashMap::from([("a".to_string(), x), ("b".to_string(), y)]);
        outer.inline(&inner, &drivers, "u0");
    }

    #[test]
    #[should_panic(expected = "driver for input `b` of `addreg` is 24 bit(s) wide")]
    fn inline_rejects_wide_driver() {
        let inner = adder_netlist();
        let mut outer = Netlist::new("top");
        let x = outer.add_input("x", 16);
        let y = outer.add_input("y", 24);
        let drivers = HashMap::from([("a".to_string(), x), ("b".to_string(), y)]);
        outer.inline(&inner, &drivers, "u0");
    }

    #[test]
    fn eval_const_follows_simulation_semantics() {
        let mut n = Netlist::new("fold");
        let a = n.add_const(0xF0, 8);
        let b = n.add_const(0x0F, 8);
        let add = n.add_node(NodeKind::Add, vec![a, b], 8, "add");
        let narrow = n.add_node(NodeKind::Add, vec![a, b], 4, "narrow"); // masks to 4 bits
        let cat = n.add_node(NodeKind::Concat, vec![a, b], 16, "cat");
        let i = n.add_input("i", 8);
        let var = n.add_node(NodeKind::Add, vec![a, i], 8, "var");
        let reg = n.add_node(NodeKind::Reg, vec![a], 8, "reg");
        assert_eq!(n.eval_const(add), Some(0xFF));
        assert_eq!(n.eval_const(narrow), Some(0xF));
        assert_eq!(n.eval_const(cat), Some(0xF00F));
        assert_eq!(n.eval_const(var), None, "non-const operand");
        assert_eq!(n.eval_const(reg), None, "state-holding node");
        assert_eq!(n.eval_const(i), None, "input");
    }

    #[test]
    fn retain_live_sweeps_and_remaps() {
        let mut n = Netlist::new("sweep");
        let a = n.add_input("a", 8);
        let dead = n.add_node(NodeKind::Not, vec![a], 8, "dead");
        let live = n.add_node(NodeKind::Add, vec![a, a], 8, "live");
        n.add_output("o", live);
        let mut mark = vec![false; n.node_count()];
        mark[a.0 as usize] = true;
        mark[live.0 as usize] = true;
        assert_eq!(n.retain_live(&mark), 1);
        assert_eq!(n.node_count(), 2);
        assert!(n.validate().is_ok());
        assert!(n.iter().all(|(_, node)| node.name != "dead"));
        assert_eq!(n.output("o"), Some(NodeId(1)));
        let _ = dead;
    }

    #[test]
    #[should_panic(expected = "references removed node")]
    fn retain_live_rejects_open_liveness() {
        let mut n = Netlist::new("open");
        let a = n.add_input("a", 8);
        let x = n.add_node(NodeKind::Not, vec![a], 8, "x");
        let y = n.add_node(NodeKind::Not, vec![x], 8, "y");
        n.add_output("o", y);
        let mut mark = vec![false; n.node_count()];
        mark[y.0 as usize] = true; // y live but its operand x is not
        n.retain_live(&mark);
    }

    #[test]
    fn remap_operands_rewrites_edges_and_outputs() {
        let mut n = Netlist::new("remap");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let x = n.add_node(NodeKind::Not, vec![a], 8, "x");
        n.add_output("o", x);
        n.remap_operands(|id| if id == a { b } else { id });
        assert_eq!(n.node(x).inputs, vec![b]);
        n.remap_operands(|id| if id == x { b } else { id });
        assert_eq!(n.output("o"), Some(b));
    }

    #[test]
    fn comb_value_matches_eval_semantics() {
        // Spot checks of the shared evaluation function, including masking.
        let w8 = |v: u64| (v, 8u32);
        assert_eq!(NodeKind::Add.comb_value(&[w8(0xFF), w8(1)], 8), Some(0));
        assert_eq!(NodeKind::Sub.comb_value(&[w8(0), w8(1)], 8), Some(0xFF));
        assert_eq!(NodeKind::Lt.comb_value(&[w8(3), w8(5)], 1), Some(1));
        assert_eq!(NodeKind::Mux.comb_value(&[(0, 1), w8(7), w8(9)], 8), Some(9));
        assert_eq!(NodeKind::Slice { lo: 4 }.comb_value(&[w8(0xAB)], 4), Some(0xA));
        assert_eq!(NodeKind::Delay(0).comb_value(&[(0x1FF, 16)], 8), Some(0xFF));
        assert_eq!(NodeKind::Delay(1).comb_value(&[w8(1)], 8), None);
        let core0 = NodeKind::PipelinedOp { op: PipeOp::Mac, latency: 0, ii: 1 };
        assert_eq!(core0.comb_value(&[w8(3), w8(4), w8(5)], 8), Some(17));
        assert_eq!(NodeKind::Reg.comb_value(&[w8(1)], 8), None);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(u64::MAX, 63), u64::MAX >> 1);
    }

    #[test]
    fn pipelined_op_is_sequential() {
        assert!(NodeKind::PipelinedOp { op: PipeOp::FAdd, latency: 4, ii: 1 }.is_sequential());
        assert!(!NodeKind::Add.is_sequential());
        assert_eq!(PipeOp::Conv { par: 4 }.mnemonic(), "conv");
    }

    #[test]
    fn pipeline_depth_contract() {
        // The shared zero-latency contract: depth equals the declared
        // latency, and zero-depth nodes are combinational.
        assert_eq!(NodeKind::Reg.pipeline_depth(), 1);
        assert_eq!(NodeKind::RegEn.pipeline_depth(), 1);
        assert_eq!(NodeKind::Delay(3).pipeline_depth(), 3);
        assert_eq!(NodeKind::Delay(0).pipeline_depth(), 0);
        assert!(!NodeKind::Delay(0).is_sequential());
        let zero_lat = NodeKind::PipelinedOp { op: PipeOp::FMul, latency: 0, ii: 1 };
        assert_eq!(zero_lat.pipeline_depth(), 0);
        assert!(!zero_lat.is_sequential());
        assert_eq!(NodeKind::Mux.pipeline_depth(), 0);
    }
}
