//! Property tests for [`Netlist::combinational_order`] and the structural
//! timing traversals next to it ([`Netlist::combinational_slack`],
//! [`Netlist::output_min_latencies`]), driven by the in-repo deterministic
//! PRNG (`lilac_util::rng::Rng`):
//!
//! * when an order is returned it is a valid topological order over the
//!   *combinational* edges (every combinational node appears after all of
//!   its operands; sequential nodes impose no ordering on theirs);
//! * the function is deterministic: equal netlists yield equal orders;
//! * it returns `None` exactly when a purely combinational cycle exists,
//!   as judged by an independent DFS cycle detector written against the
//!   same edge definition;
//! * `combinational_slack` agrees with a per-edge consistency relation
//!   (each combinational node is one deeper than its deepest operand, and
//!   each node's `depth_out` is the max over its combinational consumers'
//!   `depth_out + 1`), and returns `Some` exactly when an order exists;
//! * `output_min_latencies` matches an independent exhaustive
//!   Bellman–Ford-style relaxation over register counts.

use lilac_ir::{Netlist, NodeId, NodeKind, PipeOp};
use lilac_util::rng::Rng;

/// Draws a random netlist: a structurally valid DAG over the full node-kind
/// menu, then (sometimes) rewired with feedback edges. Feedback through a
/// sequential node is legal; feedback through combinational nodes creates
/// the cycles the `None` contract is about.
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = Rng::new(seed);
    let mut n = Netlist::new(format!("prop_{seed}"));
    let n_inputs = 1 + rng.index(3);
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..n_inputs {
        ids.push(n.add_input(format!("i{i}"), 1 + rng.index(16) as u32));
    }
    let n_nodes = 3 + rng.index(40);
    for k in 0..n_nodes {
        let any = ids[rng.index(ids.len())];
        let width = 1 + rng.index(16) as u32;
        let id = match rng.index(10) {
            0 => n.add_const(rng.next_u64(), width),
            1 => n.add_node(NodeKind::Reg, vec![any], width, format!("n{k}")),
            2 => {
                let e = ids[rng.index(ids.len())];
                n.add_node(NodeKind::RegEn, vec![any, e], width, format!("n{k}"))
            }
            3 => {
                let depth = rng.index(4) as u32; // includes Delay(0): combinational
                n.add_node(NodeKind::Delay(depth), vec![any], width, format!("n{k}"))
            }
            4 | 5 => {
                let b = ids[rng.index(ids.len())];
                let kind = match rng.index(6) {
                    0 => NodeKind::Add,
                    1 => NodeKind::Sub,
                    2 => NodeKind::Mul,
                    3 => NodeKind::And,
                    4 => NodeKind::Or,
                    _ => NodeKind::Xor,
                };
                n.add_node(kind, vec![any, b], width, format!("n{k}"))
            }
            6 => {
                let (s, b) = (ids[rng.index(ids.len())], ids[rng.index(ids.len())]);
                n.add_node(NodeKind::Mux, vec![s, any, b], width, format!("n{k}"))
            }
            7 => n.add_node(NodeKind::Not, vec![any], width, format!("n{k}")),
            8 => {
                let latency = rng.index(3) as u32; // includes latency 0: combinational
                let b = ids[rng.index(ids.len())];
                n.add_node(
                    NodeKind::PipelinedOp { op: PipeOp::FAdd, latency, ii: 1 },
                    vec![any, b],
                    width,
                    format!("n{k}"),
                )
            }
            _ => {
                let b = ids[rng.index(ids.len())];
                n.add_node(NodeKind::Concat, vec![any, b], width, format!("n{k}"))
            }
        };
        ids.push(id);
    }
    // Rewire a few operand edges to *later* nodes. Through a sequential
    // node this is an ordinary feedback loop; through a combinational node
    // it may (or may not) close a purely combinational cycle.
    for _ in 0..rng.index(4) {
        let id = ids[rng.index(ids.len())];
        let node = n.node(id);
        if node.inputs.is_empty() {
            continue;
        }
        let slot = rng.index(node.inputs.len());
        let target = ids[rng.index(ids.len())];
        let mut inputs = node.inputs.clone();
        inputs[slot] = target;
        n.set_inputs(id, inputs);
    }
    n.add_output("o", *ids.last().unwrap());
    n
}

/// Independent ground truth: DFS cycle detection over the combinational
/// edges (operand -> node, only when the node itself is combinational).
fn has_combinational_cycle(n: &Netlist) -> bool {
    let count = n.node_count();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); count];
    for (id, node) in n.iter() {
        if node.kind.is_sequential() {
            continue;
        }
        for input in &node.inputs {
            dependents[input.0 as usize].push(id.0 as usize);
        }
    }
    // Iterative three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; count];
    for root in 0..count {
        if color[root] != Color::White {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = Color::Gray;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < dependents[v].len() {
                let w = dependents[v][*next];
                *next += 1;
                match color[w] {
                    Color::Gray => return true,
                    Color::White => {
                        color[w] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    false
}

#[test]
fn order_is_a_valid_topological_order_over_combinational_edges() {
    let mut ordered = 0;
    for seed in 0..300 {
        let n = random_netlist(seed);
        let Some(order) = n.combinational_order() else { continue };
        ordered += 1;
        assert_eq!(order.len(), n.node_count(), "seed {seed}: order must cover every node");
        let mut position = vec![usize::MAX; n.node_count()];
        for (pos, id) in order.iter().enumerate() {
            assert_eq!(position[id.0 as usize], usize::MAX, "seed {seed}: node {id} appears twice");
            position[id.0 as usize] = pos;
        }
        for (id, node) in n.iter() {
            if node.kind.is_sequential() {
                continue; // sequential nodes read their operands "later"
            }
            for input in &node.inputs {
                assert!(
                    position[input.0 as usize] < position[id.0 as usize],
                    "seed {seed}: combinational node {id} ordered before its operand {input}"
                );
            }
        }
    }
    assert!(ordered >= 100, "generator must produce plenty of acyclic cases: {ordered}");
}

#[test]
fn order_is_deterministic() {
    for seed in 0..100 {
        let n = random_netlist(seed);
        assert_eq!(n.combinational_order(), n.combinational_order(), "seed {seed}");
        // And across structurally equal netlists built from scratch.
        let m = random_netlist(seed);
        assert_eq!(n.combinational_order(), m.combinational_order(), "seed {seed}");
    }
}

#[test]
fn none_exactly_when_a_combinational_cycle_exists() {
    let (mut cyclic, mut acyclic) = (0, 0);
    for seed in 0..400 {
        let n = random_netlist(seed);
        let expected_cycle = has_combinational_cycle(&n);
        if expected_cycle {
            cyclic += 1;
        } else {
            acyclic += 1;
        }
        assert_eq!(
            n.combinational_order().is_none(),
            expected_cycle,
            "seed {seed}: order and the independent cycle detector disagree"
        );
    }
    assert!(cyclic >= 20, "generator must produce cyclic cases: {cyclic}");
    assert!(acyclic >= 100, "generator must produce acyclic cases: {acyclic}");
}

#[test]
fn slack_satisfies_the_per_edge_consistency_relation() {
    let mut checked = 0;
    for seed in 0..300 {
        let n = random_netlist(seed);
        let slack = n.combinational_slack();
        assert_eq!(
            slack.is_some(),
            n.combinational_order().is_some(),
            "seed {seed}: slack and order must agree on cyclicity"
        );
        let Some(slack) = slack else { continue };
        checked += 1;
        assert_eq!(slack.len(), n.node_count());
        // depth_in: 0 on sources and sequential nodes; 1 + max operand
        // depth_in on combinational nodes.
        for (id, node) in n.iter() {
            let s = slack[id.0 as usize];
            let comb = !node.kind.is_sequential()
                && !matches!(node.kind, NodeKind::Input(_) | NodeKind::Const(_));
            if comb {
                let deepest =
                    node.inputs.iter().map(|i| slack[i.0 as usize].depth_in).max().unwrap_or(0);
                assert_eq!(s.depth_in, deepest + 1, "seed {seed}: node {id} depth_in");
            } else {
                assert_eq!(s.depth_in, 0, "seed {seed}: node {id} is a path start");
            }
        }
        // depth_out: max over combinational consumers of depth_out + 1.
        let mut expect_out = vec![0u32; n.node_count()];
        for (id, node) in n.iter() {
            if node.kind.is_sequential() {
                continue;
            }
            if matches!(node.kind, NodeKind::Input(_) | NodeKind::Const(_)) {
                continue;
            }
            for input in &node.inputs {
                let e = &mut expect_out[input.0 as usize];
                *e = (*e).max(slack[id.0 as usize].depth_out + 1);
            }
        }
        for (id, _) in n.iter() {
            assert_eq!(
                slack[id.0 as usize].depth_out, expect_out[id.0 as usize],
                "seed {seed}: node {id} depth_out"
            );
        }
    }
    assert!(checked >= 100, "generator must produce plenty of acyclic cases: {checked}");
}

/// Independent ground truth for `output_min_latencies`: relax register
/// counts to a fixpoint over every operand edge (a Bellman–Ford that also
/// converges on cyclic netlists, since weights are non-negative and we only
/// ever lower distances).
fn min_latencies_fixpoint(n: &Netlist) -> Vec<(String, Option<u64>)> {
    let count = n.node_count();
    let mut dist: Vec<Option<u64>> = vec![None; count];
    for (id, node) in n.iter() {
        if matches!(node.kind, NodeKind::Input(_)) {
            dist[id.0 as usize] = Some(0);
        }
    }
    loop {
        let mut changed = false;
        for (id, node) in n.iter() {
            let weight = node.kind.pipeline_depth() as u64;
            for input in &node.inputs {
                if let Some(d) = dist[input.0 as usize] {
                    let cost = d + weight;
                    let slot = &mut dist[id.0 as usize];
                    if slot.is_none_or(|cur| cost < cur) {
                        *slot = Some(cost);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    n.outputs.iter().map(|(p, id)| (p.name.clone(), dist[id.0 as usize])).collect()
}

#[test]
fn output_min_latencies_match_the_exhaustive_relaxation() {
    for seed in 0..300 {
        let n = random_netlist(seed);
        assert_eq!(
            n.output_min_latencies(),
            min_latencies_fixpoint(&n),
            "seed {seed}: Dijkstra and the fixpoint relaxation disagree"
        );
    }
}

#[test]
fn min_latencies_on_known_shapes() {
    // i -> Reg -> Delay(2) -> o: three registers on the only path.
    let mut n = Netlist::new("chain");
    let i = n.add_input("i", 8);
    let r = n.add_node(NodeKind::Reg, vec![i], 8, "r");
    let d = n.add_node(NodeKind::Delay(2), vec![r], 8, "d");
    n.add_output("o", d);
    assert_eq!(n.output_min_latencies(), vec![("o".to_string(), Some(3))]);

    // Two paths of different depth into a mux: the minimum wins.
    let mut m = Netlist::new("diamond");
    let i = m.add_input("i", 8);
    let s = m.add_input("s", 1);
    let slow = m.add_node(NodeKind::Delay(4), vec![i], 8, "slow");
    let fast = m.add_node(NodeKind::Reg, vec![i], 8, "fast");
    let mux = m.add_node(NodeKind::Mux, vec![s, slow, fast], 8, "mux");
    m.add_output("o", mux);
    // The select input reaches the mux with zero registers.
    assert_eq!(m.output_min_latencies(), vec![("o".to_string(), Some(0))]);

    // An isolated register ring driving an output: unreachable from any
    // primary source.
    let mut ring = Netlist::new("ring");
    let _i = ring.add_input("i", 8);
    let r1 = ring.add_node(NodeKind::Reg, vec![NodeId(0)], 8, "r1");
    let r2 = ring.add_node(NodeKind::Reg, vec![r1], 8, "r2");
    ring.set_inputs(r1, vec![r2]);
    ring.add_output("o", r1);
    // r1 reads r2 reads r1 — but r1's original input edge to the module
    // input was rewired away, so no source reaches the ring.
    assert_eq!(ring.output_min_latencies(), vec![("o".to_string(), None)]);
}

#[test]
fn slack_on_a_known_pipeline() {
    // i -> add1 -> add2 -> Reg -> not -> o
    let mut n = Netlist::new("pipe");
    let i = n.add_input("i", 8);
    let a1 = n.add_node(NodeKind::Add, vec![i, i], 8, "a1");
    let a2 = n.add_node(NodeKind::Add, vec![a1, i], 8, "a2");
    let r = n.add_node(NodeKind::Reg, vec![a2], 8, "r");
    let inv = n.add_node(NodeKind::Not, vec![r], 8, "inv");
    n.add_output("o", inv);
    let slack = n.combinational_slack().unwrap();
    let at = |id: NodeId| slack[id.0 as usize];
    assert_eq!((at(i).depth_in, at(i).depth_out), (0, 2), "input feeds the 2-add chain");
    assert_eq!((at(a1).depth_in, at(a1).depth_out), (1, 1));
    assert_eq!((at(a2).depth_in, at(a2).depth_out), (2, 0), "register cuts the chain");
    assert_eq!((at(r).depth_in, at(r).depth_out), (0, 1), "reg starts the `not` chain");
    assert_eq!((at(inv).depth_in, at(inv).depth_out), (1, 0));
}

#[test]
fn sequential_feedback_is_not_a_combinational_cycle() {
    // The canonical counter: reg -> add -> reg feedback. The cycle goes
    // through a register, so an order must exist.
    let mut n = Netlist::new("counter");
    let one = n.add_const(1, 8);
    let reg = n.add_node(NodeKind::Reg, vec![one], 8, "count");
    let next = n.add_node(NodeKind::Add, vec![reg, one], 8, "next");
    n.set_inputs(reg, vec![next]);
    n.add_output("o", reg);
    assert!(n.combinational_order().is_some());
    assert!(!has_combinational_cycle(&n));

    // Swap the register for a Delay(0) passthrough: now the same loop is
    // purely combinational and must be rejected.
    let mut m = Netlist::new("loop");
    let one = m.add_const(1, 8);
    let d0 = m.add_node(NodeKind::Delay(0), vec![one], 8, "pass");
    let next = m.add_node(NodeKind::Add, vec![d0, one], 8, "next");
    m.set_inputs(d0, vec![next]);
    m.add_output("o", d0);
    assert!(m.combinational_order().is_none());
    assert!(has_combinational_cycle(&m));
}
