//! The width-1/63/64 edge shared across all four evaluators: `lilac-sim`'s
//! interpreter, the compiled tape (its own copy lives in
//! `lilac-sim::compiled`), the Verilog back end re-simulated here, and the
//! abstract analyzer (`lilac-analysis` has the same widths in
//! `width_64_edges`). Width 64 is where `(1 << w) - 1` overflows if masking
//! is written naively; width 63 is the widest masked word; width 1 the
//! booleanized fast paths. All four must agree by test, not convention.

use lilac_ir::{emit_verilog, Netlist, NodeKind};
use lilac_sim::Simulator;
use lilac_util::rng::Rng;
use lilac_vsim::{parse_design, VSimulator};

fn arith_netlist(width: u32) -> Netlist {
    let mut n = Netlist::new(format!("edge{width}"));
    let a = n.add_input("a", width);
    let b = n.add_input("b", width);
    let sum = n.add_node(NodeKind::Add, vec![a, b], width, "sum");
    let dif = n.add_node(NodeKind::Sub, vec![a, b], width, "dif");
    let prd = n.add_node(NodeKind::Mul, vec![a, b], width, "prd");
    let ltn = n.add_node(NodeKind::Lt, vec![a, b], 1, "ltn");
    let eqn = n.add_node(NodeKind::Eq, vec![a, b], 1, "eqn");
    let inv = n.add_node(NodeKind::Not, vec![a], width, "inv");
    let reg = n.add_node(NodeKind::Reg, vec![sum], width, "reg");
    n.add_output("sum", sum);
    n.add_output("dif", dif);
    n.add_output("prd", prd);
    n.add_output("lt", ltn);
    n.add_output("eq", eqn);
    n.add_output("inv", inv);
    n.add_output("rg", reg);
    n
}

#[test]
fn emitted_verilog_matches_interpreter_at_widths_1_63_64() {
    for width in [1u32, 63, 64] {
        let n = arith_netlist(width);
        let verilog = emit_verilog(&n);
        let design = parse_design(&verilog).unwrap_or_else(|e| panic!("width {width}: parse: {e}"));
        let mut vsim = VSimulator::new(&design).expect("simulatable");
        let mut sim = Simulator::new(&n).expect("valid netlist");
        let mut rng = Rng::new(0xED6E ^ u64::from(width));
        for cycle in 0..24 {
            // Bias toward the overflow corners: all-ones, top bit, zero.
            for port in ["a", "b"] {
                let raw = rng.next_u64();
                let v = match raw % 5 {
                    0 => u64::MAX,
                    1 => 1u64 << 63,
                    2 => 0,
                    _ => raw,
                };
                sim.set_input(port, v);
                vsim.set_input(port, v);
            }
            for name in ["sum", "dif", "prd", "lt", "eq", "inv", "rg"] {
                assert_eq!(
                    vsim.peek(name),
                    sim.peek(name),
                    "output `{name}` diverged at width {width}, cycle {cycle}"
                );
            }
            sim.step();
            vsim.step();
        }
    }
}
