//! Each bug fixed alongside the vsim oracle, demonstrated the way the
//! oracle would have found it: the *pre-fix* emission (reconstructed
//! verbatim as Verilog text) simulates differently from `lilac-sim` on the
//! same netlist, while the current emission agrees cycle-for-cycle.

use lilac_ir::{emit_verilog, Netlist, NodeKind, PipeOp};
use lilac_sim::Simulator;
use lilac_vsim::{parse_design, VSimulator};

/// Collects `cycles` pre-edge output values from `lilac-sim`.
fn sim_trace(netlist: &Netlist, input: &str, output: &str, cycles: usize) -> Vec<u64> {
    let mut sim = Simulator::new(netlist).expect("valid netlist");
    let mut out = Vec::new();
    for c in 0..cycles {
        sim.set_input(input, 10 + c as u64);
        out.push(sim.peek(output));
        sim.step();
    }
    out
}

/// Collects `cycles` pre-edge output values from a Verilog text.
fn vsim_trace(verilog: &str, input: &str, output: &str, cycles: usize) -> Vec<u64> {
    let design = parse_design(verilog).unwrap_or_else(|e| panic!("parse: {e}\n---\n{verilog}"));
    let mut vsim = VSimulator::new(&design).expect("simulatable");
    let mut out = Vec::new();
    for c in 0..cycles {
        vsim.set_input(input, 10 + c as u64);
        out.push(vsim.peek(output));
        vsim.step();
    }
    out
}

#[test]
fn delay_off_by_one_would_have_been_caught() {
    // Delay(2): the pre-fix backend emitted a 2-deep shift array *plus* a
    // registered output — three cycles of delay for a two-cycle node.
    let mut n = Netlist::new("delay2");
    let i = n.add_input("i", 8);
    let d = n.add_node(NodeKind::Delay(2), vec![i], 8, "d");
    n.add_output("o", d);

    let buggy = r#"
module delay2(clk, i, o);
  input clk;
  input [7:0] i;
  output [7:0] o;
  reg [7:0] n1; // d
  reg [7:0] n1_sr [0:1];
  always @(posedge clk) begin
    n1_sr[0] <= i;
    n1_sr[1] <= n1_sr[0];
    n1 <= n1_sr[1];
  end
  assign o = n1;
endmodule
"#;
    let reference = sim_trace(&n, "i", "o", 12);
    assert_ne!(
        vsim_trace(buggy, "i", "o", 12),
        reference,
        "the pre-fix emission is one cycle slow; the oracle must see it"
    );
    assert_eq!(vsim_trace(&emit_verilog(&n), "i", "o", 12), reference);
}

#[test]
fn pipelined_core_off_by_one_would_have_been_caught() {
    // Latency-2 core: the pre-fix backend emitted a depth-2 pipe array plus
    // a registered output — latency 3 in hardware for a latency-2 type.
    let mut n = Netlist::new("fmul2");
    let a = n.add_input("a", 16);
    let core = n.add_node(
        NodeKind::PipelinedOp { op: PipeOp::FMul, latency: 2, ii: 1 },
        vec![a, a],
        16,
        "core",
    );
    n.add_output("o", core);

    let buggy = r#"
module fmul2(clk, a, o);
  input clk;
  input [15:0] a;
  output [15:0] o;
  reg [15:0] n1; // core
  reg [15:0] n1_pipe [0:1];
  always @(posedge clk) begin
    n1_pipe[0] <= a * a;
    n1_pipe[1] <= n1_pipe[0];
    n1 <= n1_pipe[1];
  end
  assign o = n1;
endmodule
"#;
    let reference = sim_trace(&n, "a", "o", 12);
    assert_ne!(vsim_trace(buggy, "a", "o", 12), reference);
    assert_eq!(vsim_trace(&emit_verilog(&n), "a", "o", 12), reference);
}

#[test]
fn latency_zero_contract_would_have_been_caught() {
    // latency = 0: the backend always emitted a combinational assign, but
    // the simulator used to clamp the depth to one cycle (`.max(1)`). Under
    // the shared contract both sides are combinational; the old simulator
    // behaviour (reconstructed as a one-deep pipe) must diverge.
    let mut n = Netlist::new("comb_core");
    let a = n.add_input("a", 16);
    let core = n.add_node(
        NodeKind::PipelinedOp { op: PipeOp::FAdd, latency: 0, ii: 1 },
        vec![a, a],
        16,
        "core",
    );
    n.add_output("o", core);

    let one_cycle_clamp = r#"
module comb_core(clk, a, o);
  input clk;
  input [15:0] a;
  output [15:0] o;
  reg [15:0] n1; // core
  always @(posedge clk) begin
    n1 <= a + a;
  end
  assign o = n1;
endmodule
"#;
    let reference = sim_trace(&n, "a", "o", 12);
    assert_ne!(
        vsim_trace(one_cycle_clamp, "a", "o", 12),
        reference,
        "the old `.max(1)` clamp is observable and must diverge"
    );
    assert_eq!(vsim_trace(&emit_verilog(&n), "a", "o", 12), reference);
    // And the combinational path really is combinational: the first peeked
    // value already reflects the first input.
    assert_eq!(reference[0], 20);
}

#[test]
fn stuck_fifo_pointer_would_have_been_caught() {
    // The LI FIFO's read pointer was a register fed by the constant 1: it
    // moved 0 -> 1 after the first push and stayed there, so the output mux
    // always presented stage 1. Reconstruct that netlist and check it is
    // *observably different* from the fixed wrapping counter.
    fn fifo_with(ptr_fix: bool) -> Netlist {
        let mut n = Netlist::new("fifo");
        let data = n.add_input("data", 8);
        let push = n.add_input("push", 1);
        if ptr_fix {
            let out = lilac_li::rv::add_fifo(&mut n, data, push, 8, 3);
            n.add_output("o", out);
        } else {
            // Pre-fix structure: shift stages + a pointer register that
            // never increments.
            let mut stages = Vec::new();
            let mut current = data;
            for k in 0..3 {
                let reg = n.add_node(NodeKind::RegEn, vec![current, push], 8, format!("fifo_s{k}"));
                stages.push(reg);
                current = reg;
            }
            let one = n.add_const(1, 2);
            let ptr = n.add_node(NodeKind::Reg, vec![one], 2, "fifo_rptr");
            let mut selected = stages[0];
            for (k, &stage) in stages.iter().enumerate().skip(1) {
                let k_const = n.add_const(k as u64, 2);
                let is_k = n.add_node(NodeKind::Eq, vec![ptr, k_const], 1, format!("fifo_sel{k}"));
                selected = n.add_node(
                    NodeKind::Mux,
                    vec![is_k, stage, selected],
                    8,
                    format!("fifo_mux{k}"),
                );
            }
            n.add_output("o", selected);
        }
        n
    }

    let drive = |n: &Netlist| -> Vec<u64> {
        let mut sim = Simulator::new(n).expect("valid");
        sim.set_input("push", 1);
        let mut out = Vec::new();
        for c in 0..12u64 {
            sim.set_input("data", 10 + c);
            sim.step();
            out.push(sim.output("o"));
        }
        out
    };
    let fixed = fifo_with(true);
    let stuck = fifo_with(false);
    assert_ne!(drive(&fixed), drive(&stuck), "a stuck pointer is functionally observable");

    // The fixed FIFO's emitted Verilog still matches lilac-sim exactly
    // (push toggling included), so the LI baseline the differential oracle
    // compares against is both correct and faithfully emitted.
    let verilog = emit_verilog(&fixed);
    let design = parse_design(&verilog).unwrap_or_else(|e| panic!("parse: {e}\n---\n{verilog}"));
    let mut vsim = VSimulator::new(&design).expect("simulatable");
    let mut sim = Simulator::new(&fixed).expect("valid");
    for c in 0..24u64 {
        let push = u64::from(c % 3 != 2);
        sim.set_input("data", 10 + c);
        sim.set_input("push", push);
        vsim.set_input("data", 10 + c);
        vsim.set_input("push", push);
        assert_eq!(sim.peek("o"), vsim.peek("o"), "cycle {c}");
        sim.step();
        vsim.step();
    }
}

#[test]
fn keyword_ports_emit_legal_verilog() {
    // An input named `reg` and two inputs that collide after character
    // replacement used to produce illegal Verilog; now the module parses
    // and simulates identically to lilac-sim.
    let mut n = Netlist::new("module");
    let r = n.add_input("reg", 8);
    let x = n.add_input("a+b", 8);
    let y = n.add_input("a-b", 8);
    let sum = n.add_node(NodeKind::Add, vec![x, y], 8, "sum");
    let xor = n.add_node(NodeKind::Xor, vec![sum, r], 8, "x");
    let regd = n.add_node(NodeKind::Reg, vec![xor], 8, "r");
    n.add_output("wire", regd);

    let verilog = emit_verilog(&n);
    let design = parse_design(&verilog).unwrap_or_else(|e| panic!("parse: {e}\n---\n{verilog}"));
    let mut vsim = VSimulator::new(&design).expect("simulatable");
    let mut sim = Simulator::new(&n).expect("valid");
    let v_inputs = vsim.input_names();
    let v_outputs = vsim.output_names();
    for c in 0..8u64 {
        for (k, name) in ["reg", "a+b", "a-b"].iter().enumerate() {
            sim.set_input(name, 3 * c + k as u64);
            vsim.set_input(&v_inputs[k], 3 * c + k as u64);
        }
        assert_eq!(sim.peek("wire"), vsim.peek(&v_outputs[0]), "cycle {c}");
        sim.step();
        vsim.step();
    }
}
