//! An in-repo Verilog simulator for the backend's output.
//!
//! The paper's end-to-end claim is that latency-abstract designs compile to
//! Verilog whose cycle-exact behaviour matches what the timing type system
//! reasoned about. Every other layer of this reproduction is cross-checked
//! by a differential oracle; this crate closes the last gap by giving the
//! Verilog *text* an executable semantics:
//!
//! * [`lexer`] / [`parser`] — a lexer and recursive-descent parser for the
//!   exact structural/behavioural subset `lilac_ir::emit_verilog` produces:
//!   one module, ranged ports, `wire`/`reg` declarations, unpacked arrays,
//!   continuous assignments, and a single `always @(posedge clk)` block of
//!   nonblocking (optionally `if`-enabled) assignments;
//! * [`design`] — the parsed design IR plus structural validation;
//! * [`eval`] — a two-phase cycle-accurate evaluator ([`VSimulator`])
//!   whose API mirrors `lilac_sim::Simulator`.
//!
//! `lilac-fuzz` uses the pair as its fifth differential oracle: every
//! generated netlist is emitted, re-parsed, simulated, and held to
//! bit-identical outputs against `lilac-sim` on every cycle. The off-by-one
//! pipeline depths this oracle caught on day one (`Delay(n)` emitting
//! `n + 1` registers, pipelined cores emitting `latency + 1`, `latency = 0`
//! cores disagreeing about combinationality) are pinned as regression tests
//! in `tests/regressions.rs`.
//!
//! The value model is deliberately two-state (no `x`/`z`): state powers up
//! at zero and division by zero yields 0, matching the interpreter it is
//! compared against. Anything outside the emitted subset is a loud parse
//! error rather than a silent approximation.
//!
//! # Example
//!
//! ```
//! let src = "
//! module inc(clk, i, o);
//!   input clk;
//!   input [7:0] i;
//!   output [7:0] o;
//!   wire [7:0] n1;
//!   reg [7:0] n2;
//!   assign n1 = i + 8'd1;
//!   always @(posedge clk) begin
//!     n2 <= n1;
//!   end
//!   assign o = n2;
//! endmodule
//! ";
//! let design = lilac_vsim::parse_design(src)?;
//! let mut sim = lilac_vsim::VSimulator::new(&design)?;
//! sim.set_input("i", 41);
//! sim.step();
//! assert_eq!(sim.peek("o"), 42); // registered one cycle later
//! # Ok::<(), String>(())
//! ```

pub mod design;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use design::{Design, Port};
pub use eval::VSimulator;
pub use parser::parse_design;
