//! Two-phase cycle-accurate evaluation of a parsed [`Design`].
//!
//! Mirrors `lilac-sim`'s semantics so the two simulators can be compared
//! output-for-output, cycle-for-cycle:
//!
//! * **Phase 1 (settle)** — continuous assignments are evaluated in
//!   topological order from the current inputs and register state;
//! * **Phase 2 (clock edge)** — every nonblocking assignment samples its
//!   right-hand side (and `if` guard), then all targets commit at once.
//!
//! The value model is two-state and 64-bit: every net holds an unsigned
//! integer masked to its declared width, all state powers up at zero (the
//! reset-less convention of the emitted modules), and division by zero
//! yields 0. There are no `x`/`z` values — the oracle compares against an
//! interpreter that has none either.

use crate::design::{BinOp, Design, Expr, NetKind, SeqStmt, SeqTarget};
// The one canonical width mask, shared with `lilac-sim` and the optimizer's
// constant folder so the three width semantics cannot drift.
use lilac_ir::mask;
use std::collections::HashMap;

/// A cycle-accurate interpreter for a parsed Verilog module.
///
/// The API deliberately parallels `lilac_sim::Simulator`: set inputs for the
/// upcoming cycle, [`peek`](VSimulator::peek) combinational outputs, and
/// [`step`](VSimulator::step) across the clock edge.
#[derive(Clone, Debug)]
pub struct VSimulator {
    design: Design,
    /// Scalar net values (ports, wires, regs), masked to width.
    values: HashMap<String, u64>,
    /// Unpacked-array contents.
    arrays: HashMap<String, Vec<u64>>,
    /// Indices into `design.assigns` in dependency order.
    order: Vec<usize>,
    /// True when `values` may be stale: set by `set_input`/`step`, cleared
    /// by `settle`, so repeated `peek`s between edges are O(1).
    dirty: bool,
    cycle: u64,
}

impl VSimulator {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns an error if the design fails validation, a net is driven by
    /// two continuous assignments, or the assignments form a combinational
    /// cycle.
    pub fn new(design: &Design) -> Result<VSimulator, String> {
        design.validate()?;
        let order = assign_order(design)?;
        let mut values = HashMap::new();
        let mut arrays = HashMap::new();
        for net in design.nets.values() {
            match net.array {
                Some(depth) => {
                    arrays.insert(net.name.clone(), vec![0u64; depth as usize]);
                }
                None => {
                    values.insert(net.name.clone(), 0u64);
                }
            }
        }
        Ok(VSimulator { design: design.clone(), values, arrays, order, dirty: true, cycle: 0 })
    }

    /// Sets a named input for the upcoming cycle (the clock is not an
    /// input — it is implied by [`step`](VSimulator::step)).
    ///
    /// # Panics
    ///
    /// Panics if the input does not exist.
    pub fn set_input(&mut self, name: &str, value: u64) {
        let port = self
            .design
            .inputs
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no input named `{name}` in `{}`", self.design.name));
        let masked = mask(value, port.width);
        self.values.insert(port.name.clone(), masked);
        self.dirty = true;
    }

    /// Evaluates the continuous assignments for this cycle and then advances
    /// every register across one clock edge.
    pub fn step(&mut self) {
        self.settle();
        // Sample every RHS (and guard) before committing anything: that is
        // what makes the assignments nonblocking. `staged` indexes into the
        // statement list rather than cloning expression trees — this runs
        // once per simulated cycle on the fuzzer's hot path.
        let staged: Vec<(usize, u64)> = self
            .design
            .seq
            .iter()
            .enumerate()
            .filter_map(|(k, SeqStmt { guard, rhs, .. })| {
                let env = Env { design: &self.design, values: &self.values, arrays: &self.arrays };
                let enabled = guard.as_ref().is_none_or(|g| env.eval(g) != 0);
                enabled.then(|| (k, env.eval(rhs)))
            })
            .collect();
        for (k, value) in staged {
            match &self.design.seq[k].target {
                SeqTarget::Net(name) => {
                    let width = self.design.nets[name].width;
                    *self.values.get_mut(name).expect("validated reg") = mask(value, width);
                }
                SeqTarget::ArrayElem(name, idx) => {
                    let width = self.design.nets[name].width;
                    self.arrays.get_mut(name).expect("validated array")[*idx as usize] =
                        mask(value, width);
                }
            }
        }
        self.dirty = true;
        self.cycle += 1;
    }

    /// Settles combinational logic and returns the value of a named output
    /// (or any scalar net).
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn peek(&mut self, name: &str) -> u64 {
        self.settle();
        *self
            .values
            .get(name)
            .unwrap_or_else(|| panic!("no net named `{name}` in `{}`", self.design.name))
    }

    /// Current cycle count (number of `step` calls so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Input port names in declaration order (clock excluded).
    pub fn input_names(&self) -> Vec<String> {
        self.design.inputs.iter().map(|p| p.name.clone()).collect()
    }

    /// Output port names in declaration order.
    pub fn output_names(&self) -> Vec<String> {
        self.design.outputs.iter().map(|p| p.name.clone()).collect()
    }

    /// Returns to the zero power-up state: every net and array element
    /// zero, cycle count zero — exactly as a freshly built simulator.
    pub fn reset(&mut self) {
        for v in self.values.values_mut() {
            *v = 0;
        }
        for arr in self.arrays.values_mut() {
            arr.fill(0);
        }
        self.cycle = 0;
        self.dirty = true;
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        for k in 0..self.order.len() {
            let (target, rhs) = &self.design.assigns[self.order[k]];
            let width = self.design.nets[target].width;
            let env = Env { design: &self.design, values: &self.values, arrays: &self.arrays };
            let v = mask(env.eval(rhs), width);
            // Every scalar net was seeded in `new`, so this never allocates.
            *self.values.get_mut(target.as_str()).expect("seeded net") = v;
        }
    }
}

/// The unified backend contract: differential harnesses drive the Verilog
/// evaluator through the same trait as the interpreter and the compiled
/// tape. Output lookups are restricted to declared output ports (unlike
/// [`peek`](VSimulator::peek), which reads any scalar net).
impl lilac_sim::SimBackend for VSimulator {
    fn try_set_input(&mut self, name: &str, value: u64) -> Result<(), lilac_sim::PortError> {
        let port = self.design.inputs.iter().find(|p| p.name == name).ok_or_else(|| {
            lilac_sim::PortError::new(
                &self.design.name,
                lilac_sim::PortDir::Input,
                name,
                self.input_names(),
            )
        })?;
        let masked = mask(value, port.width);
        self.values.insert(port.name.clone(), masked);
        self.dirty = true;
        Ok(())
    }

    fn try_output(&mut self, name: &str) -> Result<u64, lilac_sim::PortError> {
        if !self.design.outputs.iter().any(|p| p.name == name) {
            return Err(lilac_sim::PortError::new(
                &self.design.name,
                lilac_sim::PortDir::Output,
                name,
                self.output_names(),
            ));
        }
        Ok(self.peek(name))
    }

    fn step(&mut self) {
        VSimulator::step(self);
    }

    fn reset(&mut self) {
        VSimulator::reset(self);
    }

    fn cycle(&self) -> u64 {
        VSimulator::cycle(self)
    }

    fn input_names(&self) -> Vec<String> {
        VSimulator::input_names(self)
    }

    fn output_names(&self) -> Vec<String> {
        VSimulator::output_names(self)
    }
}

/// Read-only view used during expression evaluation, so `settle`/`step` can
/// mutate `values`/`arrays` between evaluations without cloning the design.
struct Env<'a> {
    design: &'a Design,
    values: &'a HashMap<String, u64>,
    arrays: &'a HashMap<String, Vec<u64>>,
}

impl Env<'_> {
    fn eval(&self, e: &Expr) -> u64 {
        match e {
            Expr::Const { width, value } => mask(*value, *width),
            Expr::Net(n) => self.values[n],
            Expr::ArrayElem(n, i) => self.arrays[n][*i as usize],
            // The `lo >= 64` guard mirrors `NodeKind::comb_value`'s Slice
            // rule: a select past bit 63 reads constant 0.
            Expr::Select { net, hi, lo } => {
                let v = if *lo >= 64 { 0 } else { self.values[net] >> lo };
                mask(v, hi - lo + 1)
            }
            // Raw complement: the assignment target's mask truncates, which
            // is both what `lilac-sim` does (`!v` masked to the node width)
            // and what Verilog does after zero-extending the operand to the
            // assignment context.
            Expr::Not(a) => !self.eval(a),
            Expr::Binary(op, a, b) => {
                let (x, y) = (self.eval(a), self.eval(b));
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => x.checked_div(y).unwrap_or(0),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Eq => (x == y) as u64,
                    BinOp::Lt => (x < y) as u64,
                }
            }
            Expr::Ternary(c, a, b) => {
                if self.eval(c) != 0 {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            Expr::Concat(parts) => {
                let mut acc = 0u64;
                for p in parts {
                    // Mirror `NodeKind::comb_value`: a 64-bit part fills the
                    // accumulator outright (`acc << 64` would overflow).
                    let w = self.design.expr_width(p);
                    let v = mask(self.eval(p), w);
                    acc = if w >= 64 { v } else { (acc << w) | v };
                }
                acc
            }
        }
    }
}

/// Orders the continuous assignments so every wire is computed before it is
/// read by another assignment. Register state, array elements, and inputs
/// are cycle boundaries, not dependencies.
///
/// # Errors
///
/// Returns an error on a doubly-driven net or a combinational cycle.
fn assign_order(design: &Design) -> Result<Vec<usize>, String> {
    let n = design.assigns.len();
    let mut driver: HashMap<&str, usize> = HashMap::new();
    for (i, (target, _)) in design.assigns.iter().enumerate() {
        if driver.insert(target.as_str(), i).is_some() {
            return Err(format!("net `{target}` driven by two continuous assignments"));
        }
        if design.nets.get(target).map(|d| d.kind) == Some(NetKind::Reg) {
            return Err(format!("continuous assign to reg `{target}`"));
        }
    }
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, (_, rhs)) in design.assigns.iter().enumerate() {
        let mut reads = Vec::new();
        collect_reads(rhs, &mut reads);
        for name in reads {
            if let Some(&j) = driver.get(name.as_str()) {
                dependents[j].push(i);
                indegree[i] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(format!("combinational cycle through the assignments of `{}`", design.name))
    }
}

/// Collects every scalar net read by an expression (array reads are state,
/// not combinational dependencies — only `assign`-driven scalars matter, and
/// the caller filters by driver).
fn collect_reads(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Const { .. } | Expr::ArrayElem(..) => {}
        Expr::Net(n) => out.push(n.clone()),
        Expr::Select { net, .. } => out.push(net.clone()),
        Expr::Not(a) => collect_reads(a, out),
        Expr::Binary(_, a, b) => {
            collect_reads(a, out);
            collect_reads(b, out);
        }
        Expr::Ternary(c, a, b) => {
            collect_reads(c, out);
            collect_reads(a, out);
            collect_reads(b, out);
        }
        Expr::Concat(parts) => {
            for p in parts {
                collect_reads(p, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_design;

    fn sim(src: &str) -> VSimulator {
        VSimulator::new(&parse_design(src).unwrap()).unwrap()
    }

    #[test]
    fn register_delays_by_one_cycle() {
        let mut s = sim("module r(clk, i, o);\n input clk;\n input [7:0] i;\n\
                         output [7:0] o;\n reg [7:0] n1;\n\
                         always @(posedge clk) begin\n n1 <= i;\n end\n\
                         assign o = n1;\nendmodule\n");
        s.set_input("i", 7);
        assert_eq!(s.peek("o"), 0);
        s.step();
        assert_eq!(s.peek("o"), 7);
        s.set_input("i", 9);
        assert_eq!(s.peek("o"), 7, "nonblocking: new input not visible until the edge");
        s.step();
        assert_eq!(s.peek("o"), 9);
        assert_eq!(s.cycle(), 2);
    }

    #[test]
    fn shift_array_is_nonblocking() {
        // All three stages shift simultaneously; a blocking evaluation would
        // collapse the pipe.
        let mut s = sim("module d(clk, i, o);\n input clk;\n input [3:0] i;\n\
                         output [3:0] o;\n reg [3:0] sr [0:1];\n reg [3:0] n1;\n\
                         always @(posedge clk) begin\n sr[0] <= i;\n sr[1] <= sr[0];\n\
                         n1 <= sr[1];\n end\n assign o = n1;\nendmodule\n");
        let mut outs = Vec::new();
        for v in 1..=6u64 {
            s.set_input("i", v);
            s.step();
            outs.push(s.peek("o"));
        }
        assert_eq!(outs, vec![0, 0, 1, 2, 3, 4], "three registers end to end");
    }

    #[test]
    fn assigns_settle_in_dependency_order_regardless_of_source_order() {
        // `o` reads n2 which reads n1; declared in reverse order.
        let mut s = sim("module c(clk, a, o);\n input clk;\n input [7:0] a;\n\
                         output [7:0] o;\n wire [7:0] n1;\n wire [7:0] n2;\n\
                         assign n2 = n1 + 8'd1;\n assign n1 = a + 8'd1;\n\
                         assign o = n2;\nendmodule\n");
        s.set_input("a", 5);
        assert_eq!(s.peek("o"), 7);
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let err = VSimulator::new(
            &parse_design(
                "module l(clk, o);\n input clk;\n output [7:0] o;\n wire [7:0] n1;\n\
                 wire [7:0] n2;\n assign n1 = n2;\n assign n2 = n1;\n assign o = n1;\nendmodule\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("combinational cycle"), "{err}");
    }

    #[test]
    fn width_masking_and_two_state_division() {
        let mut s = sim("module m(clk, a, b, s, q, r);\n input clk;\n input [3:0] a;\n\
                         input [3:0] b;\n output [3:0] s;\n output [3:0] q;\n\
                         input [0:0] r;\n wire [3:0] n2;\n wire [3:0] n3;\n\
                         assign n2 = a + b;\n assign n3 = a / b;\n\
                         assign s = n2;\n assign q = n3;\nendmodule\n");
        s.set_input("a", 12);
        s.set_input("b", 7);
        assert_eq!(s.peek("s"), (12 + 7) & 0xF);
        assert_eq!(s.peek("q"), 12 / 7);
        s.set_input("b", 0);
        assert_eq!(s.peek("q"), 0, "division by zero is 0 in the two-state model");
    }

    #[test]
    fn guarded_register_holds_value() {
        let mut s = sim("module g(clk, d, en, q);\n input clk;\n input [7:0] d;\n\
                         input [0:0] en;\n output [7:0] q;\n reg [7:0] n2;\n\
                         always @(posedge clk) begin\n if (en) n2 <= d;\n end\n\
                         assign q = n2;\nendmodule\n");
        s.set_input("d", 5);
        s.set_input("en", 1);
        s.step();
        assert_eq!(s.peek("q"), 5);
        s.set_input("d", 99);
        s.set_input("en", 0);
        s.step();
        assert_eq!(s.peek("q"), 5, "disabled register must hold");
        s.set_input("en", 1);
        s.step();
        assert_eq!(s.peek("q"), 99);
    }

    #[test]
    fn concat_select_and_ternary() {
        let mut s = sim("module x(clk, a, b, s, o, hi);\n input clk;\n input [3:0] a;\n\
                         input [3:0] b;\n input [0:0] s;\n output [7:0] o;\n\
                         output [1:0] hi;\n wire [7:0] n3;\n wire [7:0] n4;\n\
                         wire [1:0] n5;\n assign n3 = {a, b};\n\
                         assign n4 = s ? n3 : 8'd0;\n assign n5 = n3[7:6];\n\
                         assign o = n4;\n assign hi = n5;\nendmodule\n");
        s.set_input("a", 0b1010);
        s.set_input("b", 0b0011);
        s.set_input("s", 1);
        assert_eq!(s.peek("o"), 0b1010_0011, "first concat element is most significant");
        assert_eq!(s.peek("hi"), 0b10);
        s.set_input("s", 0);
        assert_eq!(s.peek("o"), 0);
    }

    #[test]
    fn doubly_driven_net_is_rejected() {
        let err = VSimulator::new(
            &parse_design(
                "module dd(clk, a, o);\n input clk;\n input [7:0] a;\n output [7:0] o;\n\
                 wire [7:0] n1;\n assign n1 = a;\n assign n1 = a;\n assign o = n1;\nendmodule\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("two continuous assignments"), "{err}");
    }
}
