//! Tokenizer for the emitted Verilog subset.
//!
//! `lilac-ir`'s backend produces a small, regular dialect: identifiers,
//! decimal numbers, based literals (`8'd255`), a fixed set of punctuation
//! and operators, and `//` line comments. Anything else is a lex error —
//! the oracle *wants* to fail loudly if the emitter starts producing text
//! outside the subset the evaluator understands.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Unsized decimal number (indices, ranges).
    Number(u64),
    /// Sized based literal `W'dV`.
    Based {
        /// Declared width in bits.
        width: u32,
        /// Value (already truncated to 64 bits by parsing).
        value: u64,
    },
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `<=` (nonblocking assignment)
    NonBlocking,
    /// `==`
    EqEq,
    /// `<`
    Lt,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Number(v) => write!(f, "{v}"),
            Token::Based { width, value } => write!(f, "{width}'d{value}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Question => write!(f, "?"),
            Token::At => write!(f, "@"),
            Token::Assign => write!(f, "="),
            Token::NonBlocking => write!(f, "<="),
            Token::EqEq => write!(f, "=="),
            Token::Lt => write!(f, "<"),
            Token::Tilde => write!(f, "~"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
        }
    }
}

/// Tokenizes Verilog source, skipping whitespace and `//` comments.
///
/// # Errors
///
/// Returns `line:column: message` on the first character or malformed
/// literal outside the subset.
pub fn lex(src: &str) -> Result<Vec<Token>, String> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;
    let err = |line: usize, col: usize, msg: String| format!("{line}:{col}: {msg}");
    while i < bytes.len() {
        let c = bytes[i] as char;
        let here = (line, col);
        macro_rules! push1 {
            ($t:expr) => {{
                tokens.push($t);
                i += 1;
                col += 1;
            }};
        }
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push1!(Token::LParen),
            ')' => push1!(Token::RParen),
            '[' => push1!(Token::LBracket),
            ']' => push1!(Token::RBracket),
            '{' => push1!(Token::LBrace),
            '}' => push1!(Token::RBrace),
            ';' => push1!(Token::Semi),
            ',' => push1!(Token::Comma),
            ':' => push1!(Token::Colon),
            '?' => push1!(Token::Question),
            '@' => push1!(Token::At),
            '~' => push1!(Token::Tilde),
            '&' => push1!(Token::Amp),
            '|' => push1!(Token::Pipe),
            '^' => push1!(Token::Caret),
            '+' => push1!(Token::Plus),
            '-' => push1!(Token::Minus),
            '*' => push1!(Token::Star),
            '/' => push1!(Token::Slash),
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                    col += 2;
                } else {
                    push1!(Token::Assign);
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NonBlocking);
                    i += 2;
                    col += 2;
                } else {
                    push1!(Token::Lt);
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let digits = &src[start..i];
                let value: u64 = digits
                    .parse()
                    .map_err(|e| err(here.0, here.1, format!("bad number `{digits}`: {e}")))?;
                col += i - start;
                if bytes.get(i) == Some(&b'\'') {
                    // Based literal `W'dV` (only decimal base in the subset).
                    if bytes.get(i + 1) != Some(&b'd') {
                        return Err(err(
                            here.0,
                            here.1,
                            "only decimal based literals (W'dV) are supported".to_string(),
                        ));
                    }
                    i += 2;
                    col += 2;
                    let vstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    if vstart == i {
                        return Err(err(here.0, here.1, "based literal missing digits".into()));
                    }
                    let vdigits = &src[vstart..i];
                    let v: u64 = vdigits.parse().map_err(|e| {
                        err(here.0, here.1, format!("bad literal value `{vdigits}`: {e}"))
                    })?;
                    col += i - vstart;
                    if value == 0 || value > 64 {
                        return Err(err(
                            here.0,
                            here.1,
                            format!("literal width {value} outside 1..=64"),
                        ));
                    }
                    tokens.push(Token::Based { width: value as u32, value: v });
                } else {
                    tokens.push(Token::Number(value));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '\\' => {
                // Identifier; a leading backslash starts a Verilog escaped
                // identifier terminated by whitespace.
                let escaped = c == '\\';
                if escaped {
                    i += 1;
                    col += 1;
                }
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    let ok = if escaped {
                        !b.is_ascii_whitespace()
                    } else {
                        b.is_ascii_alphanumeric() || b == '_' || b == '$'
                    };
                    if !ok {
                        break;
                    }
                    i += 1;
                }
                col += i - start;
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(err(here.0, here.1, format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_emitted_shapes() {
        let toks = lex("assign n3 = a_b + 4'd5; // comment\n  n1_sr[0] <= x;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("assign".into()),
                Token::Ident("n3".into()),
                Token::Assign,
                Token::Ident("a_b".into()),
                Token::Plus,
                Token::Based { width: 4, value: 5 },
                Token::Semi,
                Token::Ident("n1_sr".into()),
                Token::LBracket,
                Token::Number(0),
                Token::RBracket,
                Token::NonBlocking,
                Token::Ident("x".into()),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn distinguishes_lt_from_nonblocking_and_eq() {
        let toks = lex("a < b == c <= d").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Lt,
                Token::Ident("b".into()),
                Token::EqEq,
                Token::Ident("c".into()),
                Token::NonBlocking,
                Token::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn rejects_out_of_subset_characters() {
        assert!(lex("a # b").unwrap_err().contains("unexpected character"));
        assert!(lex("4'hFF").unwrap_err().contains("decimal"));
        assert!(lex("128'd0").unwrap_err().contains("outside"));
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let toks = lex("// everything here ; = <= is skipped\nmodule").unwrap();
        assert_eq!(toks, vec![Token::Ident("module".into())]);
    }
}
