//! Recursive-descent parser for the emitted Verilog subset.
//!
//! Grammar (exactly what `lilac_ir::emit_verilog` produces):
//!
//! ```text
//! module   := 'module' ident '(' ident (',' ident)* ')' ';' item* 'endmodule'
//! item     := 'input' range? ident ';'
//!           | 'output' range? ident ';'
//!           | ('wire' | 'reg') range? ident ('[' num ':' num ']')? ';'
//!           | 'assign' ident '=' expr ';'
//!           | 'always' '@' '(' 'posedge' ident ')' 'begin' stmt* 'end'
//! stmt     := 'if' '(' expr ')' nb | nb
//! nb       := ident ('[' num ']')? '<=' expr ';'
//! range    := '[' num ':' num ']'
//! ```
//!
//! Expressions follow Verilog precedence for the operators in the subset
//! (`~` > `* /` > `+ -` > `<` > `==` > `&` > `^` > `|` > `?:`). Whether
//! `id[k]` is an array-element read or a bit select is resolved against the
//! declarations, which in the emitted text always precede uses.

use crate::design::{BinOp, Design, Expr, Net, NetKind, Port, SeqStmt, SeqTarget};
use crate::lexer::{lex, Token};

/// The IEEE 1364-2001 reserved words (plus `logic`), rejected wherever a
/// declared identifier is expected. This is the same list
/// `lilac_ir::emit_verilog`'s sanitizer escapes (equality is pinned by a
/// test in `tests/golden.rs` — this crate deliberately has no runtime
/// dependencies, so the list is duplicated rather than imported) — checking
/// it here means a keyword leaking through emission fails the fuzzer's
/// Verilog oracle as a parse error instead of passing silently (the
/// subset's keywords are otherwise contextual).
pub const RESERVED: &[&str] = &[
    "always",
    "and",
    "assign",
    "automatic",
    "begin",
    "buf",
    "bufif0",
    "bufif1",
    "case",
    "casex",
    "casez",
    "cell",
    "cmos",
    "config",
    "deassign",
    "default",
    "defparam",
    "design",
    "disable",
    "edge",
    "else",
    "end",
    "endcase",
    "endconfig",
    "endfunction",
    "endgenerate",
    "endmodule",
    "endprimitive",
    "endspecify",
    "endtable",
    "endtask",
    "event",
    "for",
    "force",
    "forever",
    "fork",
    "function",
    "generate",
    "genvar",
    "highz0",
    "highz1",
    "if",
    "ifnone",
    "incdir",
    "include",
    "initial",
    "inout",
    "input",
    "instance",
    "integer",
    "join",
    "large",
    "liblist",
    "library",
    "localparam",
    "logic",
    "macromodule",
    "medium",
    "module",
    "nand",
    "negedge",
    "nmos",
    "nor",
    "noshowcancelled",
    "not",
    "notif0",
    "notif1",
    "or",
    "output",
    "parameter",
    "pmos",
    "posedge",
    "primitive",
    "pull0",
    "pull1",
    "pulldown",
    "pullup",
    "pulsestyle_ondetect",
    "pulsestyle_onevent",
    "rcmos",
    "real",
    "realtime",
    "reg",
    "release",
    "repeat",
    "rnmos",
    "rpmos",
    "rtran",
    "rtranif0",
    "rtranif1",
    "scalared",
    "showcancelled",
    "signed",
    "small",
    "specify",
    "specparam",
    "strong0",
    "strong1",
    "supply0",
    "supply1",
    "table",
    "task",
    "time",
    "tran",
    "tranif0",
    "tranif1",
    "tri",
    "tri0",
    "tri1",
    "triand",
    "trior",
    "trireg",
    "unsigned",
    "use",
    "vectored",
    "wait",
    "wand",
    "weak0",
    "weak1",
    "while",
    "wire",
    "wor",
    "xnor",
    "xor",
];

fn check_identifier(name: &str) -> Result<(), String> {
    if RESERVED.contains(&name) {
        Err(format!("reserved word `{name}` used as an identifier"))
    } else {
        Ok(())
    }
}

/// Parses one Verilog module into a [`Design`].
///
/// # Errors
///
/// Returns a message describing the first token outside the subset, an
/// undeclared reference, or a structural violation ([`Design::validate`]).
pub fn parse_design(src: &str) -> Result<Design, String> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, design: Design::default() };
    p.module()?;
    p.design.validate()?;
    Ok(p.design)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    design: Design,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, String> {
        let t = self.tokens.get(self.pos).cloned().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Token) -> Result<(), String> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(format!("expected {want}, found {got}"))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found {other}")),
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        match self.next()? {
            Token::Number(v) => Ok(v),
            other => Err(format!("expected number, found {other}")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        let got = self.next()?;
        match &got {
            Token::Ident(s) if s == kw => Ok(()),
            other => Err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `[msb:lsb]` → width `msb - lsb + 1`.
    fn range_width(&mut self) -> Result<u32, String> {
        self.expect(&Token::LBracket)?;
        let msb = self.number()?;
        self.expect(&Token::Colon)?;
        let lsb = self.number()?;
        self.expect(&Token::RBracket)?;
        if lsb > msb {
            return Err(format!("descending range [{msb}:{lsb}] not supported"));
        }
        let width = msb - lsb + 1;
        if width > 64 {
            return Err(format!("width {width} exceeds the 64-bit value model"));
        }
        Ok(width as u32)
    }

    fn declare(&mut self, net: Net) -> Result<(), String> {
        check_identifier(&net.name)?;
        let name = net.name.clone();
        if self.design.nets.insert(name.clone(), net).is_some() {
            return Err(format!("net `{name}` declared twice"));
        }
        Ok(())
    }

    fn module(&mut self) -> Result<(), String> {
        self.keyword("module")?;
        self.design.name = self.ident()?;
        check_identifier(&self.design.name)?;
        self.expect(&Token::LParen)?;
        let mut port_order = vec![self.ident()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            port_order.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Semi)?;

        loop {
            if self.eat_keyword("endmodule") {
                break;
            }
            if self.eat_keyword("input") {
                let width = if matches!(self.peek(), Some(Token::LBracket)) {
                    self.range_width()?
                } else {
                    1
                };
                let name = self.ident()?;
                self.expect(&Token::Semi)?;
                if name == "clk" {
                    self.design.clock = Some(name.clone());
                } else {
                    self.design.inputs.push(Port { name: name.clone(), width });
                }
                self.declare(Net { name, width, kind: NetKind::Wire, array: None })?;
            } else if self.eat_keyword("output") {
                let width = if matches!(self.peek(), Some(Token::LBracket)) {
                    self.range_width()?
                } else {
                    1
                };
                let name = self.ident()?;
                self.expect(&Token::Semi)?;
                self.design.outputs.push(Port { name: name.clone(), width });
                self.declare(Net { name, width, kind: NetKind::Wire, array: None })?;
            } else if self.eat_keyword("wire") || self.eat_keyword("reg") {
                let kind = if matches!(&self.tokens[self.pos - 1], Token::Ident(s) if s == "reg") {
                    NetKind::Reg
                } else {
                    NetKind::Wire
                };
                let width = if matches!(self.peek(), Some(Token::LBracket)) {
                    self.range_width()?
                } else {
                    1
                };
                let name = self.ident()?;
                let array = if matches!(self.peek(), Some(Token::LBracket)) {
                    self.expect(&Token::LBracket)?;
                    let lo = self.number()?;
                    self.expect(&Token::Colon)?;
                    let hi = self.number()?;
                    self.expect(&Token::RBracket)?;
                    if lo != 0 || hi >= u32::MAX as u64 {
                        return Err(format!("unsupported array bounds [{lo}:{hi}] on `{name}`"));
                    }
                    Some(hi as u32 + 1)
                } else {
                    None
                };
                self.expect(&Token::Semi)?;
                self.declare(Net { name, width, kind, array })?;
            } else if self.eat_keyword("assign") {
                let target = self.ident()?;
                self.expect(&Token::Assign)?;
                let rhs = self.expr()?;
                self.expect(&Token::Semi)?;
                self.design.assigns.push((target, rhs));
            } else if self.eat_keyword("always") {
                self.expect(&Token::At)?;
                self.expect(&Token::LParen)?;
                self.keyword("posedge")?;
                let clock = self.ident()?;
                match &self.design.clock {
                    Some(c) if *c == clock => {}
                    Some(c) => return Err(format!("always block clocked by `{clock}`, not `{c}`")),
                    None => return Err(format!("posedge `{clock}` has no matching input")),
                }
                self.expect(&Token::RParen)?;
                self.keyword("begin")?;
                while !self.eat_keyword("end") {
                    let stmt = self.seq_stmt()?;
                    self.design.seq.push(stmt);
                }
            } else {
                let t = self.next()?;
                return Err(format!("unexpected token {t} at module level"));
            }
        }
        if self.pos != self.tokens.len() {
            return Err("trailing tokens after endmodule".to_string());
        }

        // The port list must agree with the declarations.
        for name in &port_order {
            if !self.design.nets.contains_key(name) {
                return Err(format!("port `{name}` listed but never declared"));
            }
        }
        for p in self.design.inputs.iter().chain(&self.design.outputs) {
            if !port_order.contains(&p.name) {
                return Err(format!("`{}` declared as a port but not listed", p.name));
            }
        }
        Ok(())
    }

    fn seq_stmt(&mut self) -> Result<SeqStmt, String> {
        let guard = if self.eat_keyword("if") {
            self.expect(&Token::LParen)?;
            let g = self.expr()?;
            self.expect(&Token::RParen)?;
            Some(g)
        } else {
            None
        };
        let name = self.ident()?;
        let target = if matches!(self.peek(), Some(Token::LBracket)) {
            self.expect(&Token::LBracket)?;
            let i = self.number()?;
            self.expect(&Token::RBracket)?;
            SeqTarget::ArrayElem(name, i as u32)
        } else {
            SeqTarget::Net(name)
        };
        self.expect(&Token::NonBlocking)?;
        let rhs = self.expr()?;
        self.expect(&Token::Semi)?;
        Ok(SeqStmt { guard, target, rhs })
    }

    // -- expressions, loosest binding first -------------------------------

    fn expr(&mut self) -> Result<Expr, String> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, String> {
        let cond = self.bit_or()?;
        if matches!(self.peek(), Some(Token::Question)) {
            self.pos += 1;
            let then = self.expr()?;
            self.expect(&Token::Colon)?;
            let els = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn bit_or(&mut self) -> Result<Expr, String> {
        let mut e = self.bit_xor()?;
        while matches!(self.peek(), Some(Token::Pipe)) {
            self.pos += 1;
            let rhs = self.bit_xor()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, String> {
        let mut e = self.bit_and()?;
        while matches!(self.peek(), Some(Token::Caret)) {
            self.pos += 1;
            let rhs = self.bit_and()?;
            e = Expr::Binary(BinOp::Xor, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, String> {
        let mut e = self.equality()?;
        while matches!(self.peek(), Some(Token::Amp)) {
            self.pos += 1;
            let rhs = self.equality()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, String> {
        let mut e = self.relational()?;
        while matches!(self.peek(), Some(Token::EqEq)) {
            self.pos += 1;
            let rhs = self.relational()?;
            e = Expr::Binary(BinOp::Eq, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, String> {
        let mut e = self.additive()?;
        while matches!(self.peek(), Some(Token::Lt)) {
            self.pos += 1;
            let rhs = self.additive()?;
            e = Expr::Binary(BinOp::Lt, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, String> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, String> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, String> {
        if matches!(self.peek(), Some(Token::Tilde)) {
            self.pos += 1;
            let e = self.unary()?;
            Ok(Expr::Not(Box::new(e)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, String> {
        match self.next()? {
            Token::Based { width, value } => Ok(Expr::Const { width, value }),
            Token::Number(v) => {
                // Unsized decimal literal: Verilog gives it 32 bits; the
                // emitter never produces one in expression position but the
                // grammar stays total.
                Ok(Expr::Const { width: 32, value: v })
            }
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::LBrace => {
                let mut parts = vec![self.expr()?];
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    parts.push(self.expr()?);
                }
                self.expect(&Token::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            Token::Ident(name) => {
                if matches!(self.peek(), Some(Token::LBracket)) {
                    self.expect(&Token::LBracket)?;
                    let first = self.number()?;
                    if matches!(self.peek(), Some(Token::Colon)) {
                        self.pos += 1;
                        let lo = self.number()?;
                        self.expect(&Token::RBracket)?;
                        Ok(Expr::Select { net: name, hi: first as u32, lo: lo as u32 })
                    } else {
                        self.expect(&Token::RBracket)?;
                        // `id[k]`: an array-element read when `id` is an
                        // array, a single-bit select otherwise. Declarations
                        // precede uses in the emitted text.
                        let is_array =
                            self.design.nets.get(&name).is_some_and(|n| n.array.is_some());
                        if is_array {
                            Ok(Expr::ArrayElem(name, first as u32))
                        } else {
                            Ok(Expr::Select { net: name, hi: first as u32, lo: first as u32 })
                        }
                    }
                } else {
                    Ok(Expr::Net(name))
                }
            }
            other => Err(format!("unexpected token {other} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
// Generated by the Lilac reproduction compiler
module demo(clk, a, b, o);
  input clk;
  input [7:0] a;
  input [7:0] b;
  output [7:0] o;
  wire [7:0] n2; // sum
  reg [7:0] n3; // sum_r
  reg [7:0] n4_sr [0:1];
  reg [7:0] n4; // tail
  assign n2 = a + b;
  always @(posedge clk) begin
    n3 <= n2;
    n4_sr[0] <= n3;
    n4_sr[1] <= n4_sr[0];
    n4 <= n4_sr[1];
  end
  assign o = n4;
endmodule
";

    #[test]
    fn parses_the_emitted_module_shape() {
        let d = parse_design(SMALL).unwrap();
        assert_eq!(d.name, "demo");
        assert_eq!(d.clock.as_deref(), Some("clk"));
        assert_eq!(d.inputs.len(), 2);
        assert_eq!(d.outputs.len(), 1);
        assert_eq!(d.assigns.len(), 2);
        assert_eq!(d.seq.len(), 4);
        assert_eq!(d.net("n4_sr").unwrap().array, Some(2));
        // `n4_sr[0]` on the RHS resolved as an array element, not a select.
        assert!(matches!(
            &d.seq[2].rhs,
            Expr::ArrayElem(n, 0) if n == "n4_sr"
        ));
    }

    #[test]
    fn precedence_matches_verilog() {
        let src = "module m(clk, a, b, c, o);\n input clk;\n input [7:0] a;\n\
                   input [7:0] b;\n input [7:0] c;\n output [0:0] o;\n wire [0:0] n4;\n\
                   assign n4 = a * b + c == c < b;\n assign o = n4;\nendmodule\n";
        let d = parse_design(src).unwrap();
        // ((a*b)+c) == (c<b)
        let Expr::Binary(BinOp::Eq, lhs, rhs) = &d.assigns[0].1 else {
            panic!("== must bind loosest: {:?}", d.assigns[0].1)
        };
        assert!(
            matches!(&**lhs, Expr::Binary(BinOp::Add, mul, _) if matches!(&**mul, Expr::Binary(BinOp::Mul, _, _)))
        );
        assert!(matches!(&**rhs, Expr::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn rejects_undeclared_and_out_of_bounds() {
        let src =
            "module m(clk, o);\n input clk;\n output [0:0] o;\n assign o = ghost;\nendmodule\n";
        assert!(parse_design(src).unwrap_err().contains("undeclared net `ghost`"));
        let src = "module m(clk, a, o);\n input clk;\n input [3:0] a;\n output [0:0] o;\n\
                   wire [0:0] n2;\n assign n2 = a[9:9];\n assign o = n2;\nendmodule\n";
        assert!(parse_design(src).unwrap_err().contains("outside width"));
    }

    #[test]
    fn reserved_words_are_rejected_as_identifiers() {
        // The subset's keywords are contextual, so without an explicit check
        // `fork` would parse as an ordinary net — and a keyword leaking
        // through the emitter's sanitizer would never fail the oracle.
        let src = "module m(clk, fork, o);\n input clk;\n input [7:0] fork;\n\
                   output [7:0] o;\n assign o = fork;\nendmodule\n";
        assert!(parse_design(src).unwrap_err().contains("reserved word `fork`"));
        let src = "module table(clk, a, o);\n input clk;\n input [7:0] a;\n\
                   output [7:0] o;\n assign o = a;\nendmodule\n";
        assert!(parse_design(src).unwrap_err().contains("reserved word `table`"));
    }

    #[test]
    fn if_guard_parses_as_enable() {
        let src = "module m(clk, d, en, q);\n input clk;\n input [7:0] d;\n input [0:0] en;\n\
                   output [7:0] q;\n reg [7:0] n3;\n always @(posedge clk) begin\n\
                   if (en) n3 <= d;\n end\n assign q = n3;\nendmodule\n";
        let d = parse_design(src).unwrap();
        assert_eq!(d.seq.len(), 1);
        assert!(d.seq[0].guard.is_some());
    }
}
