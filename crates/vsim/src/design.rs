//! Parsed representation of one Verilog module.
//!
//! The design IR is deliberately close to the text: named nets (scalar
//! wires/regs and unpacked arrays), continuous assignments, and the
//! nonblocking statements of the single `always @(posedge clk)` block. The
//! evaluator ([`crate::VSimulator`]) gives it two-phase cycle semantics.

use std::collections::HashMap;

/// A module port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Bit width.
    pub width: u32,
}

/// Storage class of a declared net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// Driven by a continuous assignment (or a module input).
    Wire,
    /// Written by nonblocking assignments in the always block.
    Reg,
}

/// A declared net: scalar, or an unpacked array of `depth` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Bit width of each word.
    pub width: u32,
    /// Storage class.
    pub kind: NetKind,
    /// `Some(depth)` for unpacked arrays (`reg [w:0] x [0:depth-1];`).
    pub array: Option<u32>,
}

/// Binary operators of the subset, in the emitter's vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields 0 in the two-state model)
    Div,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `==`
    Eq,
    /// `<` (unsigned)
    Lt,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Sized literal `W'dV`.
    Const {
        /// Declared width.
        width: u32,
        /// Value.
        value: u64,
    },
    /// A scalar net or port reference.
    Net(String),
    /// An unpacked-array element `name[index]`.
    ArrayElem(String, u32),
    /// A part-select `name[hi:lo]` (or single-bit `name[b]`).
    Select {
        /// Selected net.
        net: String,
        /// High bit.
        hi: u32,
        /// Low bit.
        lo: u32,
    },
    /// Bitwise complement `~e`.
    Not(Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, ...}` (first element most significant).
    Concat(Vec<Expr>),
}

/// Target of a nonblocking assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqTarget {
    /// A scalar reg.
    Net(String),
    /// An array element.
    ArrayElem(String, u32),
}

/// One statement of the always block: `lhs <= rhs;`, optionally guarded by
/// `if (guard)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqStmt {
    /// Enable condition (the emitter's `if (en) r <= d;` form).
    pub guard: Option<Expr>,
    /// Assignment target.
    pub target: SeqTarget,
    /// Right-hand side, sampled before the clock edge.
    pub rhs: Expr,
}

/// A parsed module.
#[derive(Clone, Debug, Default)]
pub struct Design {
    /// Module name.
    pub name: String,
    /// Declared inputs in declaration order, excluding the clock.
    pub inputs: Vec<Port>,
    /// Declared outputs in declaration order.
    pub outputs: Vec<Port>,
    /// The clock input, when the module has one (`clk` by convention).
    pub clock: Option<String>,
    /// Every declared net (ports included), by name.
    pub nets: HashMap<String, Net>,
    /// Continuous assignments `(target, rhs)` in source order.
    pub assigns: Vec<(String, Expr)>,
    /// Nonblocking statements of the always block, in source order.
    pub seq: Vec<SeqStmt>,
}

impl Design {
    /// Looks up a declared net.
    pub fn net(&self, name: &str) -> Option<&Net> {
        self.nets.get(name)
    }

    /// Width of an expression, following the emitter's conventions: nets and
    /// selects carry their declared widths, literals their sized widths,
    /// operators the maximum of their operands (comparisons are 1 bit), and
    /// concatenation the sum. Used for placing concat operands.
    pub fn expr_width(&self, e: &Expr) -> u32 {
        match e {
            Expr::Const { width, .. } => *width,
            Expr::Net(n) | Expr::ArrayElem(n, _) => self.nets.get(n).map_or(64, |d| d.width),
            Expr::Select { hi, lo, .. } => hi - lo + 1,
            Expr::Not(a) => self.expr_width(a),
            Expr::Binary(BinOp::Eq | BinOp::Lt, _, _) => 1,
            Expr::Binary(_, a, b) => self.expr_width(a).max(self.expr_width(b)),
            Expr::Ternary(_, a, b) => self.expr_width(a).max(self.expr_width(b)),
            Expr::Concat(parts) => parts.iter().map(|p| self.expr_width(p)).sum(),
        }
    }

    /// Structural validation: every referenced net is declared, array
    /// accesses stay in bounds and target arrays, selects stay inside the
    /// net's width, and sequential targets are regs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (target, rhs) in &self.assigns {
            let net = self
                .nets
                .get(target)
                .ok_or_else(|| format!("assign to undeclared net `{target}`"))?;
            if net.array.is_some() {
                return Err(format!("continuous assign to array `{target}`"));
            }
            self.validate_expr(rhs)?;
        }
        for stmt in &self.seq {
            if let Some(g) = &stmt.guard {
                self.validate_expr(g)?;
            }
            self.validate_expr(&stmt.rhs)?;
            let (name, idx) = match &stmt.target {
                SeqTarget::Net(n) => (n, None),
                SeqTarget::ArrayElem(n, i) => (n, Some(*i)),
            };
            let net = self
                .nets
                .get(name)
                .ok_or_else(|| format!("nonblocking assign to undeclared net `{name}`"))?;
            if net.kind != NetKind::Reg {
                return Err(format!("nonblocking assign to non-reg `{name}`"));
            }
            match (idx, net.array) {
                (None, None) => {}
                (Some(i), Some(depth)) if i < depth => {}
                (Some(i), Some(depth)) => {
                    return Err(format!("`{name}[{i}]` out of bounds (depth {depth})"))
                }
                (Some(_), None) => return Err(format!("indexing scalar reg `{name}`")),
                (None, Some(_)) => return Err(format!("whole-array assign to `{name}`")),
            }
        }
        Ok(())
    }

    fn validate_expr(&self, e: &Expr) -> Result<(), String> {
        match e {
            Expr::Const { .. } => Ok(()),
            Expr::Net(n) => {
                let net = self.nets.get(n).ok_or_else(|| format!("undeclared net `{n}`"))?;
                if net.array.is_some() {
                    return Err(format!("whole-array reference to `{n}`"));
                }
                Ok(())
            }
            Expr::ArrayElem(n, i) => {
                let net = self.nets.get(n).ok_or_else(|| format!("undeclared net `{n}`"))?;
                match net.array {
                    Some(depth) if *i < depth => Ok(()),
                    Some(depth) => Err(format!("`{n}[{i}]` out of bounds (depth {depth})")),
                    None => Err(format!("indexing scalar net `{n}` with a single index")),
                }
            }
            Expr::Select { net, hi, lo } => {
                let decl = self.nets.get(net).ok_or_else(|| format!("undeclared net `{net}`"))?;
                if decl.array.is_some() {
                    return Err(format!("part-select on array `{net}`"));
                }
                if hi < lo || *hi >= decl.width {
                    return Err(format!("select `{net}[{hi}:{lo}]` outside width {}", decl.width));
                }
                Ok(())
            }
            Expr::Not(a) => self.validate_expr(a),
            Expr::Binary(_, a, b) => {
                self.validate_expr(a)?;
                self.validate_expr(b)
            }
            Expr::Ternary(c, a, b) => {
                self.validate_expr(c)?;
                self.validate_expr(a)?;
                self.validate_expr(b)
            }
            Expr::Concat(parts) => {
                for p in parts {
                    self.validate_expr(p)?;
                }
                Ok(())
            }
        }
    }
}
