//! The optimizer/analysis precision contract, held property-style over
//! randomized feedback netlists: optimizing never *loses* static
//! information. For every surviving net — the module outputs, which every
//! pass preserves by name — the known-bits + interval fact the analyzer
//! derives on `optimize(n)` must be at least as precise as the fact it
//! derives on `n`. Rewrites only ever replace logic with something the
//! analyzer understands at least as well (a folded constant, a decided
//! mux arm, a fused delay), so a precision regression here means a pass
//! introduced structure the abstract transfer functions cannot see
//! through.
//!
//! Also pins determinism: analyzing the same netlist twice yields
//! identical facts and round counts.

use lilac_analysis::{analyze, AbsValue};
use lilac_ir::{Netlist, NodeId, NodeKind, PipeOp};
use lilac_util::rng::Rng;

/// Draws a random valid netlist over the full node-kind menu, always
/// attempting to close at least one feedback loop through a sequential
/// node — the shape that exercises the analyzer's fixpoint/widening path
/// rather than the single forward sweep.
fn random_feedback_netlist(seed: u64) -> Netlist {
    let mut rng = Rng::new(seed);
    let mut n = Netlist::new(format!("analysis_rand_{seed}"));
    let n_inputs = 1 + rng.index(3);
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..n_inputs {
        ids.push(n.add_input(format!("i{i}"), 1 + rng.index(16) as u32));
    }
    let n_nodes = 6 + rng.index(30);
    for k in 0..n_nodes {
        let any = |rng: &mut Rng, ids: &[NodeId]| {
            if rng.chance(3, 4) {
                *ids.last().unwrap()
            } else {
                ids[rng.index(ids.len())]
            }
        };
        let width = 1 + rng.index(16) as u32;
        let id = match rng.index(14) {
            // Constants drawn often enough that folding has real work.
            0 | 1 => n.add_const(rng.next_u64(), width),
            2 => {
                let a = any(&mut rng, &ids);
                n.add_node(NodeKind::Reg, vec![a], width, format!("n{k}"))
            }
            3 => {
                let a = any(&mut rng, &ids);
                let d = rng.index(4) as u32;
                n.add_node(NodeKind::Delay(d), vec![a], width, format!("n{k}"))
            }
            4 => {
                let (a, e) = (any(&mut rng, &ids), any(&mut rng, &ids));
                n.add_node(NodeKind::RegEn, vec![a, e], width, format!("n{k}"))
            }
            5..=7 => {
                let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                let kind = match rng.index(6) {
                    0 => NodeKind::Add,
                    1 => NodeKind::Sub,
                    2 => NodeKind::Mul,
                    3 => NodeKind::And,
                    4 => NodeKind::Or,
                    _ => NodeKind::Xor,
                };
                n.add_node(kind, vec![a, b], width, format!("n{k}"))
            }
            8 => {
                let a = any(&mut rng, &ids);
                n.add_node(NodeKind::Not, vec![a], width, format!("n{k}"))
            }
            9 => {
                let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                let kind = if rng.chance(1, 2) { NodeKind::Eq } else { NodeKind::Lt };
                n.add_node(kind, vec![a, b], 1, format!("n{k}"))
            }
            10 => {
                let (s, a, b) = (any(&mut rng, &ids), any(&mut rng, &ids), any(&mut rng, &ids));
                n.add_node(NodeKind::Mux, vec![s, a, b], width, format!("n{k}"))
            }
            11 => {
                let a = any(&mut rng, &ids);
                let lo = rng.index(8) as u32;
                n.add_node(NodeKind::Slice { lo }, vec![a], width, format!("n{k}"))
            }
            12 => {
                let parts = 1 + rng.index(3);
                let inputs: Vec<NodeId> = (0..parts).map(|_| any(&mut rng, &ids)).collect();
                n.add_node(NodeKind::Concat, inputs, width, format!("n{k}"))
            }
            _ => {
                let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                let op = if rng.chance(1, 2) { PipeOp::FAdd } else { PipeOp::IntMul };
                let latency = 1 + rng.index(4) as u32;
                n.add_node(
                    NodeKind::PipelinedOp { op, latency, ii: 1 },
                    vec![a, b],
                    width,
                    format!("n{k}"),
                )
            }
        };
        ids.push(id);
    }
    // Close feedback loops through sequential nodes (their data operand may
    // legally read anything, including later nodes). Every seed makes at
    // least one attempt so most draws genuinely loop.
    for _ in 0..1 + rng.index(3) {
        let id = ids[rng.index(ids.len())];
        if n.node(id).kind.is_sequential() && !matches!(n.node(id).kind, NodeKind::RegEn) {
            let target = ids[rng.index(ids.len())];
            n.set_inputs(id, vec![target]);
        }
    }
    let n_outputs = 1 + rng.index(3);
    for o in 0..n_outputs {
        let pick = ids[ids.len() / 2 + rng.index(ids.len() - ids.len() / 2)];
        n.add_output(format!("o{o}"), pick);
    }
    n
}

/// The analyzer's fact for each module output, keyed by port name (the
/// identity that survives optimization).
fn output_facts(n: &Netlist) -> Vec<(String, AbsValue)> {
    let analysis = analyze(n).expect("netlist analyzes");
    n.outputs.iter().map(|(port, driver)| (port.name.clone(), analysis.fact(*driver))).collect()
}

#[test]
fn optimizing_never_loses_precision_on_surviving_nets() {
    let mut rewritten = 0;
    for seed in 0..150 {
        let n = random_feedback_netlist(seed);
        assert!(n.validate().is_ok(), "seed {seed}");
        let before = output_facts(&n);
        let (opt, stats) = lilac_opt::optimize_with_stats(&n);
        if stats.nodes_after < stats.nodes_before {
            rewritten += 1;
        }
        let after = output_facts(&opt);
        assert_eq!(before.len(), after.len(), "seed {seed}: optimization changed the output list");
        for ((name, fact_before), (name_after, fact_after)) in before.iter().zip(&after) {
            assert_eq!(name, name_after, "seed {seed}: output order changed");
            assert!(
                fact_after.at_least_as_precise(fact_before),
                "seed {seed}: output `{name}` lost precision: {fact_before:?} -> {fact_after:?}"
            );
        }
    }
    // The generator must exercise real rewriting, not just the optimizer's
    // no-op path: precision has to hold *because* the passes preserve it,
    // not because nothing happened. (Strict fact improvements at outputs
    // are not expected — the analyzer already sees through everything the
    // syntactic passes fold, and `fold_known_bits` is fed by this same
    // analysis — so the contract is exact preservation under real work.)
    assert!(rewritten >= 100, "only {rewritten}/150 netlists were actually rewritten");
}

#[test]
fn analysis_is_deterministic() {
    for seed in 0..50 {
        let n = random_feedback_netlist(seed);
        let a = analyze(&n).expect("analyzes");
        let b = analyze(&n).expect("analyzes");
        assert_eq!(a, b, "seed {seed}: analysis not deterministic");
    }
}
