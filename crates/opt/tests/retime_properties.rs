//! The retiming pass's cycle-exactness contract, held property-style:
//! `retime(n) ≡ n` under `lilac-sim` on every output of every cycle, for
//! randomized netlists drawn over the full node-kind menu — feedback loops
//! closed through sequential nodes and `RegEn` state included — mirroring
//! the `optimize(n) ≡ n` suite in the crate's unit tests. On top of the
//! value equivalence, every case asserts:
//!
//! * **latency preservation per output** — the minimum register count from
//!   any module input to each output ([`Netlist::output_min_latencies`])
//!   is exactly unchanged (retiming relocates registers along paths, it
//!   never changes any path's total);
//! * the estimated critical path ([`lilac_synth::critical_path_ns`]) never
//!   gets worse — the pass's accept-only-improving-moves contract;
//! * determinism: retiming the same netlist twice yields identical
//!   results.

use lilac_ir::{Netlist, NodeId, NodeKind, PipeOp};
use lilac_opt::{retime_with_stats, RetimeStats};
use lilac_sim::{CompiledSim, SimBackend, Simulator};
use lilac_util::rng::Rng;

/// Drives `a` and `b` with the same random stimuli through any
/// [`SimBackend`] constructor and asserts every output matches on every
/// cycle (power-up cycle 0 included).
fn assert_cycle_exact_with<B: SimBackend>(
    a: &Netlist,
    b: &Netlist,
    seed: u64,
    cycles: usize,
    backend: &str,
    make: impl Fn(&Netlist) -> B,
) {
    let mut rng = Rng::new(seed);
    let mut sim_a = make(a);
    let mut sim_b = make(b);
    let outputs = sim_a.output_names();
    for cycle in 0..cycles {
        for port in &a.inputs {
            let value = rng.next_u64();
            sim_a.set_input(&port.name, value);
            sim_b.set_input(&port.name, value);
        }
        for name in &outputs {
            assert_eq!(
                sim_a.output(name),
                sim_b.output(name),
                "output `{name}` diverged at cycle {cycle} of `{}` under the {backend}",
                a.name
            );
        }
        sim_a.step();
        sim_b.step();
    }
}

/// Runs the cycle-exactness check under both simulation backends: the
/// reference interpreter and the compiled tape.
fn assert_cycle_exact(a: &Netlist, b: &Netlist, seed: u64, cycles: usize) {
    assert_cycle_exact_with(a, b, seed, cycles, "interpreter", |n| {
        Simulator::new(n).expect("netlist simulates")
    });
    assert_cycle_exact_with(a, b, seed, cycles, "compiled tape", |n| {
        CompiledSim::new(n).expect("netlist compiles")
    });
}

/// Draws a random valid netlist biased toward retimable shapes: register
/// and delay stages adjacent to combinational logic, occasional feedback
/// loops closed through sequential nodes, `RegEn` holds, pipelined cores,
/// and `Concat`/`Slice` at stage boundaries.
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = Rng::new(seed);
    let mut n = Netlist::new(format!("retime_rand_{seed}"));
    let n_inputs = 1 + rng.index(3);
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..n_inputs {
        ids.push(n.add_input(format!("i{i}"), 1 + rng.index(16) as u32));
    }
    let n_nodes = 6 + rng.index(30);
    for k in 0..n_nodes {
        // Chain bias: operands usually read the newest node, so the draw
        // produces deep pipelines (comb chains punctuated by stages) —
        // the shape retiming exists for — instead of shallow scatter.
        let any = |rng: &mut Rng, ids: &[NodeId]| {
            if rng.chance(3, 4) {
                *ids.last().unwrap()
            } else {
                ids[rng.index(ids.len())]
            }
        };
        let width = 1 + rng.index(16) as u32;
        let id = match rng.index(14) {
            0 => n.add_const(rng.next_u64(), width),
            // Stages are drawn often so moves have something to relocate.
            1 | 2 => {
                let a = any(&mut rng, &ids);
                n.add_node(NodeKind::Reg, vec![a], width, format!("n{k}"))
            }
            3 | 4 => {
                let a = any(&mut rng, &ids);
                let d = rng.index(4) as u32;
                n.add_node(NodeKind::Delay(d), vec![a], width, format!("n{k}"))
            }
            5 => {
                let (a, e) = (any(&mut rng, &ids), any(&mut rng, &ids));
                n.add_node(NodeKind::RegEn, vec![a, e], width, format!("n{k}"))
            }
            6 | 7 => {
                let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                let kind = match rng.index(6) {
                    0 => NodeKind::Add,
                    1 => NodeKind::Sub,
                    2 => NodeKind::Mul,
                    3 => NodeKind::And,
                    4 => NodeKind::Or,
                    _ => NodeKind::Xor,
                };
                n.add_node(kind, vec![a, b], width, format!("n{k}"))
            }
            8 => {
                let a = any(&mut rng, &ids);
                n.add_node(NodeKind::Not, vec![a], width, format!("n{k}"))
            }
            9 => {
                let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                let kind = if rng.chance(1, 2) { NodeKind::Eq } else { NodeKind::Lt };
                n.add_node(kind, vec![a, b], 1, format!("n{k}"))
            }
            10 => {
                let (s, a, b) = (any(&mut rng, &ids), any(&mut rng, &ids), any(&mut rng, &ids));
                n.add_node(NodeKind::Mux, vec![s, a, b], width, format!("n{k}"))
            }
            11 => {
                let a = any(&mut rng, &ids);
                let lo = rng.index(8) as u32;
                n.add_node(NodeKind::Slice { lo }, vec![a], width, format!("n{k}"))
            }
            12 => {
                let parts = 1 + rng.index(3);
                let inputs: Vec<NodeId> = (0..parts).map(|_| any(&mut rng, &ids)).collect();
                n.add_node(NodeKind::Concat, inputs, width, format!("n{k}"))
            }
            _ => {
                let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                let op = if rng.chance(1, 2) { PipeOp::FAdd } else { PipeOp::IntMul };
                // Latency >= 2 keeps the core's per-stage delay from
                // capping the whole netlist's critical path (a latency-1
                // core swallows its full datapath delay in one stage,
                // which no register move can beat).
                let latency = 2 + rng.index(3) as u32;
                n.add_node(
                    NodeKind::PipelinedOp { op, latency, ii: 1 },
                    vec![a, b],
                    width,
                    format!("n{k}"),
                )
            }
        };
        ids.push(id);
    }
    // Occasionally close a feedback loop through a sequential node (its
    // data operand may legally read anything, including later nodes).
    for _ in 0..rng.index(3) {
        let id = ids[rng.index(ids.len())];
        if n.node(id).kind.is_sequential() && !matches!(n.node(id).kind, NodeKind::RegEn) {
            let target = ids[rng.index(ids.len())];
            n.set_inputs(id, vec![target]);
        }
    }
    let n_outputs = 1 + rng.index(3);
    for o in 0..n_outputs {
        let pick = ids[ids.len() / 2 + rng.index(ids.len() - ids.len() / 2)];
        n.add_output(format!("o{o}"), pick);
    }
    n
}

#[test]
fn retimed_netlists_are_cycle_exact_on_random_designs() {
    let mut moved = 0;
    let mut total_moves = 0;
    for seed in 0..150 {
        let n = random_netlist(seed);
        assert!(n.validate().is_ok(), "seed {seed}");
        let latencies_before = n.output_min_latencies();
        let cp_before = lilac_synth::critical_path_ns(&n);
        let (ret, stats) = retime_with_stats(&n);
        // Latency preservation, asserted per output.
        for (before, after) in latencies_before.iter().zip(ret.output_min_latencies()) {
            assert_eq!(*before, after, "seed {seed}: latency of output `{}` changed", before.0);
        }
        // The cost model may only ever get better.
        let cp_after = lilac_synth::critical_path_ns(&ret);
        assert!(
            cp_after <= cp_before + 1e-9,
            "seed {seed}: critical path grew {cp_before} -> {cp_after} ns"
        );
        assert!(
            (stats.critical_path_before_ns - cp_before).abs() < 1e-9
                && (stats.critical_path_after_ns - cp_after).abs() < 1e-9,
            "seed {seed}: stats disagree with the model: {stats:?}"
        );
        if stats.moves() > 0 {
            moved += 1;
            total_moves += stats.moves();
        }
        assert_cycle_exact(&n, &ret, seed ^ 0xBEEF, 32);
    }
    // The generator must actually exercise the pass, not just its
    // legality bail-outs.
    assert!(moved >= 25, "only {moved}/150 netlists had any accepted move ({total_moves} total)");
}

#[test]
fn retiming_is_deterministic() {
    for seed in 0..25 {
        let n = random_netlist(seed);
        let (a, sa): (Netlist, RetimeStats) = retime_with_stats(&n);
        let (b, sb) = retime_with_stats(&n);
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(sa, sb, "seed {seed}");
    }
}

#[test]
fn retiming_regen_feedback_designs_stays_exact() {
    // A directed shape the random draw rarely produces: a RegEn-held
    // accumulator feeding a long combinational tail through movable
    // stages, plus a feedback loop.
    let mut n = Netlist::new("regen_acc");
    let i = n.add_input("i", 12);
    let en = n.add_input("en", 1);
    let held = n.add_node(NodeKind::RegEn, vec![i, en], 12, "held");
    let sum = n.add_node(NodeKind::Add, vec![held, i], 12, "sum");
    let r1 = n.add_node(NodeKind::Reg, vec![sum], 12, "r1");
    let m1 = n.add_node(NodeKind::Mul, vec![r1, i], 12, "m1");
    let m2 = n.add_node(NodeKind::Add, vec![m1, held], 12, "m2");
    let r2 = n.add_node(NodeKind::Reg, vec![m2], 12, "r2");
    let r3 = n.add_node(NodeKind::Reg, vec![r2], 12, "r3");
    // Feedback: the accumulator's next value loops back through a register.
    let fb = n.add_node(NodeKind::Reg, vec![r3], 12, "fb");
    n.set_inputs(held, vec![fb, en]);
    n.add_output("o", r3);
    n.add_output("held", held);
    let latencies = n.output_min_latencies();
    let (ret, stats) = retime_with_stats(&n);
    assert_cycle_exact(&n, &ret, 0xFEED, 64);
    assert_eq!(ret.output_min_latencies(), latencies);
    let _ = stats;
}
