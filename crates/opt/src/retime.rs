//! Register retiming driven by the synthesis cost model.
//!
//! The fusion pass in the parent crate can *shorten* a register chain but
//! never *move* one: wherever elaboration happened to place pipeline
//! stages, that is where the critical path gets cut, and `lilac-synth`'s
//! `fmax` numbers are stuck there. This module relocates `Reg`/`Delay`
//! stages across combinational logic to balance stage delays — the first
//! pass in the workspace that rewrites *where state lives* rather than
//! collapsing it — while preserving the contract every backend relies on:
//! the retimed netlist is **cycle-for-cycle, bit-for-bit equivalent on
//! every output, from power-up onward**.
//!
//! # The two moves
//!
//! *Forward* (across a combinational node `c`, toward the outputs): every
//! non-constant operand of `c` is a `Reg`/`Delay(d ≥ 1)` stage consumed
//! only by `c`; each such stage loses one cycle of depth and a fresh
//! one-cycle stage is inserted after `c` (every former reader of `c`,
//! output ports included, now reads the new stage).
//!
//! *Backward* (across the combinational node `c` driving a stage, toward
//! the inputs): a `Reg`/`Delay(d ≥ 1)` stage whose sole upstream is `c`
//! (and `c` is consumed by nothing else) loses one cycle of depth, and
//! every non-constant operand of `c` gains a fresh one-cycle stage at the
//! operand's own declared width.
//!
//! # Legality
//!
//! Both moves preserve the register count of **every** input-to-output
//! path (so per-output path latency is exactly unchanged —
//! [`Netlist::output_min_latencies`] is asserted invariant), and:
//!
//! * registers never move across state-carrying nodes: only `Reg`/`Delay`
//!   stages move, only across combinational nodes, so `RegEn` and
//!   pipelined cores are never crossed and never relocated (a `RegEn`'s
//!   load/hold history, or a core's internal pipe, is not a delay line);
//! * declared widths are respected at every cut: a decremented stage keeps
//!   its width (its mask stays exactly where it was — `Delay(0)` still
//!   masks combinationally), the forward move's new stage carries `c`'s
//!   width, and the backward move's new stages carry each operand's width,
//!   so no mask is skipped, narrowed, or widened;
//! * no move can create a combinational cycle: a stage decremented to
//!   `Delay(0)` becomes transparent, but every path through it still
//!   passes the freshly inserted one-cycle stage (forward: all its
//!   consumers route through the new stage; backward: all of `c`'s
//!   operands do), which re-breaks any loop. The driver re-checks
//!   [`Netlist::combinational_order`] after every accepted move anyway;
//! * zero power-up boundary: with all state powering up at zero, moving a
//!   register across `c` changes what the boundary cycles observe from
//!   `c(0, …, 0, consts…)` to a register's initial 0. The move is only
//!   legal when those agree — `c`'s value over zeroed non-constant
//!   operands and actual constant operands, masked to `c`'s width, must
//!   be 0. (`Add`/`Mul`/`And`/`Or`/`Xor`/`Concat`/`Slice`/`Mux`… over
//!   zeros are zero; `Not` and `Eq` are not, and never retime.)
//!
//! # The driver
//!
//! Candidate moves are enumerated structurally (pruned by
//! [`Netlist::combinational_slack`]: a forward move needs combinational
//! logic *after* the node, a backward move needs it *before*), then scored
//! by [`lilac_synth::timing_detail`] — the same analytic timing model
//! `EXPERIMENTS.md`'s tables are built from. The objective is
//! lexicographic: the estimated critical path first, the *size of the
//! critical set* (endpoints tied at the maximum) second. The secondary
//! term is what makes tied parallel paths retimable at all: with N
//! identical blend lanes at the critical delay, no single move shortens
//! the maximum, but each move that rebalances one lane empties the
//! critical set by one — and rebalancing the last lane drops the path
//! itself. The fixpoint loop applies the best strictly-improving move
//! until none remains, so the pair decreases monotonically and
//! `critical_path_ns(retime(n)) <= critical_path_ns(n)` holds by
//! construction. The fuzzer's seventh differential oracle holds the rest:
//! `retime(n) ≡ n` under `lilac-sim` on every output of every cycle.

use lilac_ir::{mask, Netlist, NodeId, NodeKind};
use lilac_synth::timing_detail;
use std::collections::HashMap;

/// Minimum critical-path improvement (ns) for a move to be accepted; keeps
/// the fixpoint from churning on floating-point dust.
const MIN_GAIN_NS: f64 = 1e-6;

/// Safety cap on accepted moves (each strictly improves the critical path,
/// so this is a backstop, not a budget).
const MAX_MOVES: usize = 256;

/// Per-run statistics of one [`retime`] invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RetimeStats {
    /// Nodes before retiming (including inputs).
    pub nodes_before: usize,
    /// Nodes after retiming (forward/backward moves insert fresh stages).
    pub nodes_after: usize,
    /// Total register bits (`pipeline_depth × width`) before retiming.
    pub register_bits_before: u64,
    /// Total register bits after retiming.
    pub register_bits_after: u64,
    /// Accepted forward moves (registers relocated toward the outputs).
    pub forward_moves: usize,
    /// Accepted backward moves (registers relocated toward the inputs).
    pub backward_moves: usize,
    /// Candidate moves scored against the cost model across all rounds.
    pub candidates_scored: usize,
    /// Estimated critical path before retiming, in ns.
    pub critical_path_before_ns: f64,
    /// Estimated critical path after retiming, in ns.
    pub critical_path_after_ns: f64,
}

impl RetimeStats {
    /// Total accepted moves.
    pub fn moves(&self) -> usize {
        self.forward_moves + self.backward_moves
    }

    /// Estimated fmax gain in percent (0 when nothing moved).
    pub fn fmax_gain_pct(&self) -> f64 {
        if self.critical_path_after_ns <= 0.0 {
            0.0
        } else {
            100.0 * (self.critical_path_before_ns / self.critical_path_after_ns - 1.0)
        }
    }
}

/// A candidate register relocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Move {
    /// Move one register cycle from every (non-constant) operand stage of
    /// this combinational node to a fresh stage after it.
    Forward(NodeId),
    /// Move one register cycle from this stage to fresh stages on every
    /// (non-constant) operand of the combinational node driving it.
    Backward(NodeId),
}

/// Consumer table: every reader of each node (one entry per operand edge)
/// plus whether the node drives a declared output port.
struct Uses {
    consumers: Vec<Vec<NodeId>>,
    drives_output: Vec<bool>,
}

fn uses(n: &Netlist) -> Uses {
    let consumers = n.consumers();
    let mut drives_output = vec![false; n.node_count()];
    for (_, driver) in &n.outputs {
        drives_output[driver.0 as usize] = true;
    }
    Uses { consumers, drives_output }
}

/// Depth of a relocatable stage: `Reg` and `Delay` only. `RegEn` and
/// pipelined cores are state-carrying, not delay lines — never moved.
fn stage_depth(kind: &NodeKind) -> Option<u32> {
    match kind {
        NodeKind::Reg => Some(1),
        NodeKind::Delay(d) => Some(*d),
        _ => None,
    }
}

/// True for nodes a register may move across: combinational, with at least
/// one operand (rules out `Input`/`Const`, which are path endpoints).
fn crossable(kind: &NodeKind) -> bool {
    !kind.is_sequential() && !matches!(kind, NodeKind::Input(_) | NodeKind::Const(_))
}

/// The value `c` shows during boundary cycles, when every moved stage
/// still holds its power-up zero: `c` evaluated over 0 for each
/// non-constant operand and the actual value of each `Const` operand,
/// masked to `c`'s width. A move across `c` is exact iff this is 0.
fn powerup_value(n: &Netlist, c: NodeId) -> Option<u64> {
    let node = n.node(c);
    let operands: Vec<(u64, u32)> = node
        .inputs
        .iter()
        .map(|&x| {
            let op = n.node(x);
            match op.kind {
                NodeKind::Const(v) => (mask(v, op.width), op.width),
                _ => (0, op.width),
            }
        })
        .collect();
    node.kind.comb_value(&operands, node.width)
}

/// Decrements a `Reg`/`Delay` stage by one cycle in place.
fn decrement_stage(n: &mut Netlist, s: NodeId) {
    let node = n.node_mut(s);
    node.kind = match node.kind {
        NodeKind::Reg => NodeKind::Delay(0),
        NodeKind::Delay(d) => {
            debug_assert!(d >= 1, "cannot decrement a passthrough");
            NodeKind::Delay(d - 1)
        }
        ref other => unreachable!("decrement of non-stage node {other:?}"),
    };
}

/// Enumerates every legal candidate move, in deterministic (node-id)
/// order, pruned to moves that can plausibly shorten a combinational path:
/// forward moves need logic downstream of the crossed node, backward moves
/// need logic upstream of it.
fn candidates(n: &Netlist) -> Vec<Move> {
    let Some(slack) = n.combinational_slack() else { return Vec::new() };
    let u = uses(n);
    let mut moves = Vec::new();
    for (id, node) in n.iter() {
        // Forward: `id` is the combinational node being crossed.
        if crossable(&node.kind)
            && !node.inputs.is_empty()
            && slack[id.0 as usize].depth_out >= 1
            && forward_operands_legal(n, node, &u, id)
            && powerup_value(n, id) == Some(0)
        {
            moves.push(Move::Forward(id));
        }
        // Backward: `id` is the stage whose driver is crossed.
        if stage_depth(&node.kind).is_some_and(|d| d >= 1) {
            let c = node.inputs[0];
            let cn = n.node(c);
            if crossable(&cn.kind)
                && slack[c.0 as usize].depth_in >= 2
                && u.consumers[c.0 as usize].iter().all(|&r| r == id)
                && !u.drives_output[c.0 as usize]
                && powerup_value(n, c) == Some(0)
            {
                moves.push(Move::Backward(id));
            }
        }
    }
    moves
}

/// Forward-move operand legality: every non-constant operand is a
/// `Reg`/`Delay(d ≥ 1)` stage consumed only by `c` (and by no output
/// port), and at least one such stage exists.
fn forward_operands_legal(n: &Netlist, c_node: &lilac_ir::Node, u: &Uses, c: NodeId) -> bool {
    let mut any_stage = false;
    for &x in &c_node.inputs {
        let xn = n.node(x);
        if matches!(xn.kind, NodeKind::Const(_)) {
            continue;
        }
        match stage_depth(&xn.kind) {
            Some(d) if d >= 1 => {}
            _ => return false,
        }
        if u.drives_output[x.0 as usize] || !u.consumers[x.0 as usize].iter().all(|&r| r == c) {
            return false;
        }
        any_stage = true;
    }
    any_stage
}

/// Applies a move. Both rewrites add exactly one fresh stage node (forward)
/// or one per distinct non-constant operand (backward).
fn apply(n: &mut Netlist, mv: Move) {
    match mv {
        Move::Forward(c) => {
            // Decrement each distinct non-constant operand stage once.
            let operands = n.node(c).inputs.clone();
            let mut seen: Vec<NodeId> = Vec::new();
            for x in operands {
                if matches!(n.node(x).kind, NodeKind::Const(_)) || seen.contains(&x) {
                    continue;
                }
                seen.push(x);
                decrement_stage(n, x);
            }
            // Fresh one-cycle stage after `c`; every other reader of `c`
            // (and every output port `c` drove) now reads it.
            let width = n.node(c).width;
            let name = format!("{}_rt", n.node(c).name);
            let fresh = n.add_node(NodeKind::Delay(1), vec![c], width, name);
            let ids: Vec<NodeId> = n.iter().map(|(id, _)| id).collect();
            for id in ids {
                if id == fresh {
                    continue;
                }
                let node = n.node_mut(id);
                for input in &mut node.inputs {
                    if *input == c {
                        *input = fresh;
                    }
                }
            }
            for (_, driver) in &mut n.outputs {
                if *driver == c {
                    *driver = fresh;
                }
            }
        }
        Move::Backward(s) => {
            let c = n.node(s).inputs[0];
            decrement_stage(n, s);
            // Fresh one-cycle stage on each distinct non-constant operand
            // of `c`, at the operand's own width (identity mask).
            let operands = n.node(c).inputs.clone();
            let mut fresh: HashMap<NodeId, NodeId> = HashMap::new();
            let mut rewired = Vec::with_capacity(operands.len());
            for x in operands {
                if matches!(n.node(x).kind, NodeKind::Const(_)) {
                    rewired.push(x);
                    continue;
                }
                let stage = *fresh.entry(x).or_insert_with(|| {
                    let width = n.node(x).width;
                    let name = format!("{}_rt", n.node(x).name);
                    n.add_node(NodeKind::Delay(1), vec![x], width, name)
                });
                rewired.push(stage);
            }
            n.node_mut(c).inputs = rewired;
        }
    }
}

/// Retimes a netlist: see the module docs. Returns the rewritten netlist.
///
/// # Panics
///
/// Panics if `netlist` fails [`Netlist::validate`] or contains a
/// combinational cycle, or if the pass violates its own contract
/// (validation, acyclicity, unchanged interface, unchanged per-output
/// minimum latency, or a critical path worse than the input) — those would
/// be retimer bugs, and the seventh differential oracle in `lilac-fuzz`
/// exists to keep them loud.
pub fn retime(netlist: &Netlist) -> Netlist {
    retime_with_stats(netlist).0
}

/// [`retime`], also returning the per-run [`RetimeStats`].
///
/// # Panics
///
/// See [`retime`].
pub fn retime_with_stats(netlist: &Netlist) -> (Netlist, RetimeStats) {
    netlist.validate().expect("retime: input netlist must validate");
    assert!(
        netlist.combinational_order().is_some(),
        "retime: input netlist `{}` has a combinational cycle",
        netlist.name
    );
    let register_bits = |n: &Netlist| -> u64 {
        n.iter().map(|(_, node)| node.kind.pipeline_depth() as u64 * node.width as u64).sum()
    };
    let mut n = netlist.clone();
    let mut stats = RetimeStats {
        nodes_before: n.node_count(),
        register_bits_before: register_bits(&n),
        ..RetimeStats::default()
    };
    // The driver's objective is lexicographic: first the critical path,
    // then the *size of the critical set* (endpoints within tolerance of
    // the maximum). The second component is what makes tied parallel paths
    // retimable at all — with four identical blend lanes at 3.66 ns, no
    // single move shortens the maximum, but each move that rebalances one
    // lane empties the critical set by one, and the last one drops the
    // path itself. Every accepted move strictly decreases the pair, so the
    // fixpoint terminates.
    let mut current = timing_detail(&n);
    stats.critical_path_before_ns = current.critical_path_ns;
    let lex_better = |a: &lilac_synth::TimingDetail, b: &lilac_synth::TimingDetail| -> bool {
        a.critical_path_ns < b.critical_path_ns - MIN_GAIN_NS
            || (a.critical_path_ns <= b.critical_path_ns + 1e-9
                && a.critical_endpoints < b.critical_endpoints)
    };
    while stats.moves() < MAX_MOVES {
        // Score every candidate against the cost model; keep the best
        // strictly-improving one (first wins ties: deterministic).
        //
        // Each probe clones the netlist and recomputes full timing — a
        // deliberate trade of asymptotics for obviousness: moves stay
        // trivially side-effect-free, and the measured cost is microseconds
        // to low milliseconds per *complete* retime on the bundled paper
        // designs (`cargo bench -p lilac-bench`, `retime/...` rows), with
        // fuzz-case netlists far smaller. Incremental rescoring (apply +
        // undo, cone-limited arrival updates) is the upgrade path if a
        // future workload makes this the bottleneck.
        let mut best: Option<(Move, Netlist, lilac_synth::TimingDetail)> = None;
        for mv in candidates(&n) {
            let mut probe = n.clone();
            apply(&mut probe, mv);
            stats.candidates_scored += 1;
            let timing = timing_detail(&probe);
            if lex_better(&timing, &current)
                && best.as_ref().is_none_or(|(_, _, b)| lex_better(&timing, b))
            {
                best = Some((mv, probe, timing));
            }
        }
        let Some((mv, probe, timing)) = best else { break };
        debug_assert!(probe.validate().is_ok(), "retime: move {mv:?} broke validation");
        assert!(
            probe.combinational_order().is_some(),
            "retime: move {mv:?} created a combinational cycle"
        );
        match mv {
            Move::Forward(_) => stats.forward_moves += 1,
            Move::Backward(_) => stats.backward_moves += 1,
        }
        n = probe;
        current = timing;
    }
    n.validate().expect("retime: retimed netlist must validate");
    assert_eq!(n.inputs, netlist.inputs, "retime: input ports are interface");
    assert_eq!(
        n.outputs.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>(),
        netlist.outputs.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>(),
        "retime: output ports are interface"
    );
    assert_eq!(
        n.output_min_latencies(),
        netlist.output_min_latencies(),
        "retime: per-output path latency must be exactly preserved"
    );
    stats.critical_path_after_ns = current.critical_path_ns;
    assert!(
        stats.critical_path_after_ns <= stats.critical_path_before_ns + 1e-9,
        "retime: critical path grew from {} to {} ns",
        stats.critical_path_before_ns,
        stats.critical_path_after_ns
    );
    stats.nodes_after = n.node_count();
    stats.register_bits_after = register_bits(&n);
    (n, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lilac_ir::PipeOp;
    use lilac_sim::Simulator;
    use std::collections::HashMap;

    fn assert_cycle_exact(a: &Netlist, b: &Netlist, cycles: usize) {
        let mut rng = lilac_util::rng::Rng::new(0x5eed);
        let mut sim_a = Simulator::new(a).expect("original simulates");
        let mut sim_b = Simulator::new(b).expect("retimed simulates");
        let outputs = sim_a.output_names();
        for cycle in 0..cycles {
            let stim: HashMap<String, u64> =
                a.inputs.iter().map(|p| (p.name.clone(), rng.next_u64())).collect();
            sim_a.set_inputs(&stim);
            sim_b.set_inputs(&stim);
            for name in &outputs {
                assert_eq!(
                    sim_a.peek(name),
                    sim_b.peek(name),
                    "output `{name}` diverged at cycle {cycle} of `{}`",
                    a.name
                );
            }
            sim_a.step();
            sim_b.step();
        }
    }

    /// An unbalanced two-stage pipeline: all the logic (two chained adds)
    /// sits in the first stage, the second stage is an empty register. A
    /// backward move across the second add balances it.
    fn unbalanced() -> Netlist {
        let mut n = Netlist::new("unbalanced");
        let a = n.add_input("a", 16);
        let b = n.add_input("b", 16);
        let c = n.add_input("c", 16);
        let s1 = n.add_node(NodeKind::Add, vec![a, b], 16, "s1");
        let s2 = n.add_node(NodeKind::Add, vec![s1, c], 16, "s2");
        let r1 = n.add_node(NodeKind::Reg, vec![s2], 16, "r1");
        let r2 = n.add_node(NodeKind::Reg, vec![r1], 16, "r2");
        n.add_output("o", r2);
        n
    }

    #[test]
    fn backward_move_balances_an_unbalanced_pipeline() {
        let n = unbalanced();
        let (ret, stats) = retime_with_stats(&n);
        assert!(stats.moves() >= 1, "{stats:?}");
        assert!(stats.critical_path_after_ns < stats.critical_path_before_ns, "{stats:?}");
        assert!(stats.fmax_gain_pct() > 0.0);
        assert_cycle_exact(&n, &ret, 32);
        assert_eq!(ret.output_min_latencies(), n.output_min_latencies());
    }

    #[test]
    fn forward_move_balances_logic_after_the_registers() {
        // Registers on the inputs, two chained adds after them, then a
        // register: a forward move pushes one input register past the
        // first add.
        let mut n = Netlist::new("fwd");
        let a = n.add_input("a", 16);
        let b = n.add_input("b", 16);
        let c = n.add_input("c", 16);
        let ra = n.add_node(NodeKind::Reg, vec![a], 16, "ra");
        let rb = n.add_node(NodeKind::Reg, vec![b], 16, "rb");
        let s1 = n.add_node(NodeKind::Add, vec![ra, rb], 16, "s1");
        let s2 = n.add_node(NodeKind::Mul, vec![s1, c], 16, "s2");
        n.add_output("o", s2);
        let (ret, stats) = retime_with_stats(&n);
        assert!(stats.forward_moves >= 1, "{stats:?}");
        assert!(stats.critical_path_after_ns < stats.critical_path_before_ns);
        assert_cycle_exact(&n, &ret, 32);
        assert_eq!(ret.output_min_latencies(), n.output_min_latencies());
    }

    #[test]
    fn not_and_eq_never_retime() {
        // `Not(0)` and `Eq(0,0)` are non-zero at power-up, so no register
        // may cross them: the boundary cycles would diverge.
        let mut n = Netlist::new("notgate");
        let a = n.add_input("a", 8);
        let s1 = n.add_node(NodeKind::Add, vec![a, a], 8, "s1");
        let inv = n.add_node(NodeKind::Not, vec![s1], 8, "inv");
        let r = n.add_node(NodeKind::Reg, vec![inv], 8, "r");
        let r2 = n.add_node(NodeKind::Reg, vec![r], 8, "r2");
        n.add_output("o", r2);
        let (ret, stats) = retime_with_stats(&n);
        assert_eq!(stats.moves(), 0, "nothing may cross the Not: {stats:?}");
        assert_cycle_exact(&n, &ret, 16);
    }

    #[test]
    fn registers_never_cross_regen_or_cores() {
        let mut n = Netlist::new("stateful");
        let a = n.add_input("a", 8);
        let en = n.add_input("en", 1);
        let held = n.add_node(NodeKind::RegEn, vec![a, en], 8, "held");
        let s = n.add_node(NodeKind::Add, vec![held, a], 8, "s");
        let core = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::Mac, latency: 2, ii: 1 },
            vec![s, a, a],
            8,
            "core",
        );
        let r = n.add_node(NodeKind::Reg, vec![core], 8, "r");
        n.add_output("o", r);
        let (ret, stats) = retime_with_stats(&n);
        // The only stage is `r`, whose driver is a core (not crossable);
        // `held` is RegEn (not a movable stage). Nothing may move.
        assert_eq!(stats.moves(), 0, "{stats:?}");
        assert_cycle_exact(&n, &ret, 24);
    }

    #[test]
    fn fanout_across_a_register_cut_blocks_the_forward_move() {
        // `ra` feeds both the add and an output port: decrementing it
        // would change the tap's latency, so the move is illegal.
        let mut n = Netlist::new("tap");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let ra = n.add_node(NodeKind::Reg, vec![a], 8, "ra");
        let rb = n.add_node(NodeKind::Reg, vec![b], 8, "rb");
        let s = n.add_node(NodeKind::Add, vec![ra, rb], 8, "s");
        let m = n.add_node(NodeKind::Mul, vec![s, s], 8, "m");
        n.add_output("tap", ra);
        n.add_output("o", m);
        let (ret, stats) = retime_with_stats(&n);
        assert_eq!(stats.forward_moves, 0, "{stats:?}");
        assert_cycle_exact(&n, &ret, 24);
        assert_eq!(ret.output_min_latencies(), n.output_min_latencies());
    }

    #[test]
    fn feedback_loops_survive_retiming() {
        // An accumulator: reg -> add(i) -> reg feedback, with a long
        // combinational tail. Retiming must keep the loop intact and
        // cycle-exact.
        let mut n = Netlist::new("acc");
        let i = n.add_input("i", 8);
        let reg = n.add_node(NodeKind::Reg, vec![i], 8, "acc");
        let next = n.add_node(NodeKind::Add, vec![reg, i], 8, "next");
        n.set_inputs(reg, vec![next]);
        let t1 = n.add_node(NodeKind::Mul, vec![next, i], 8, "t1");
        let t2 = n.add_node(NodeKind::Add, vec![t1, i], 8, "t2");
        let r2 = n.add_node(NodeKind::Reg, vec![t2], 8, "r2");
        n.add_output("o", r2);
        let (ret, stats) = retime_with_stats(&n);
        assert_cycle_exact(&n, &ret, 48);
        assert_eq!(ret.output_min_latencies(), n.output_min_latencies());
        let _ = stats;
    }

    #[test]
    fn retime_is_deterministic_and_idempotent_at_the_fixpoint() {
        let n = unbalanced();
        let (a, sa) = retime_with_stats(&n);
        let (b, sb) = retime_with_stats(&n);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // Retiming the fixpoint finds no further improving move.
        let (again, stats) = retime_with_stats(&a);
        assert_eq!(stats.moves(), 0, "{stats:?}");
        assert_eq!(again, a);
    }

    #[test]
    fn constant_operands_retime_only_when_powerup_agrees() {
        // Add(x_reg, 5): at power-up the add shows 5, a register shows 0 —
        // the move is illegal and must not fire.
        let mut n = Netlist::new("k5");
        let a = n.add_input("a", 8);
        let k = n.add_const(5, 8);
        let ra = n.add_node(NodeKind::Reg, vec![a], 8, "ra");
        let s = n.add_node(NodeKind::Add, vec![ra, k], 8, "s");
        let m = n.add_node(NodeKind::Mul, vec![s, s], 8, "m");
        n.add_output("o", m);
        let (ret, stats) = retime_with_stats(&n);
        assert_eq!(stats.moves(), 0, "Add(_, 5) is non-zero at power-up: {stats:?}");
        assert_cycle_exact(&n, &ret, 16);

        // Add(x_reg, 0) is zero at power-up; the forward move is legal.
        let mut z = Netlist::new("k0");
        let a = z.add_input("a", 8);
        let k = z.add_const(0, 8);
        let ra = z.add_node(NodeKind::Reg, vec![a], 8, "ra");
        let s = z.add_node(NodeKind::Add, vec![ra, k], 8, "s");
        let m = z.add_node(NodeKind::Mul, vec![s, s], 8, "m");
        z.add_output("o", m);
        let (ret, stats) = retime_with_stats(&z);
        assert!(stats.forward_moves >= 1, "{stats:?}");
        assert_cycle_exact(&z, &ret, 24);
    }
}
