//! Netlist optimization: a pass pipeline over [`lilac_ir::Netlist`].
//!
//! Elaboration produces *naive* netlists: every instantiation inlines the
//! whole callee (dead nodes included), every constant is materialized per
//! use site, and alignment delays pile up as chains of single registers.
//! This crate rewrites those netlists into smaller, faster ones while
//! preserving the contract every backend relies on: **the optimized netlist
//! is cycle-for-cycle, bit-for-bit equivalent on every output**, under the
//! zero-power-up state and width-masking semantics of
//! [`NodeKind::comb_value`](lilac_ir::NodeKind::comb_value) /
//! [`NodeKind::pipeline_depth`](lilac_ir::NodeKind::pipeline_depth).
//!
//! The passes (each exposed individually, each returning how many rewrites
//! it performed):
//!
//! * [`fold_constants`] — nodes whose operands are all `Const` become
//!   `Const`, evaluated through [`Netlist::eval_const`] — the *same*
//!   function the simulator evaluates with, so fold == simulate by
//!   construction. Registers, delay lines, and pipelined cores fed only
//!   constant zeros also fold (their zero-initialized pipes can never hold
//!   anything else). The pass also strength-reduces one-constant-operand
//!   identities — `x * 1`, `x + 0`, `x - 0`, `x | 0`, `x ^ 0` become
//!   width-preserving passthroughs of `x`, and the absorbing `x * 0`,
//!   `x & 0` become `Const(0)` — the cases the all-const matcher cannot
//!   see.
//! * [`fold_known_bits`] — the analysis-fed folder: one
//!   `lilac_analysis::analyze` sweep (known bits + unsigned intervals, the
//!   same facts the fuzzer's eleventh oracle proves sound against live
//!   simulation), then nets pinned to a single value become `Const`, mux
//!   selects proven constant by dataflow narrow to one arm, and provably
//!   zero high operands are stripped from `Concat`s.
//! * [`simplify_muxes`] — a mux with a constant select, with identical
//!   arms, or with two constant arms holding the same value, degenerates
//!   to a passthrough of the surviving arm.
//! * [`fuse_delays`] — `Reg`/`Delay` chains collapse: a delay of `a` cycles
//!   reading a delay of `b` cycles becomes a single `Delay(a + b)` reading
//!   the upstream driver, and width-preserving `Delay(0)` passthroughs are
//!   copy-propagated away.
//! * [`eliminate_common_subexpressions`] — structurally identical nodes
//!   (same kind, operands, and width) merge. This includes sequential
//!   nodes: with all state powering up at zero, two registers fed by the
//!   same driver hold the same value on every cycle.
//! * [`eliminate_dead_nodes`] — nodes that no output transitively reads are
//!   swept (module input ports are always retained; they are interface).
//!
//! [`optimize`] (and [`optimize_with_stats`], which also reports per-pass
//! [`OptStats`]) runs the pipeline to a fixpoint. The result is validated
//! and re-checked for combinational cycles before it is returned, and the
//! fuzzer's sixth differential oracle (`lilac-fuzz`) holds
//! `optimize(n)` ≡ `n` under both `lilac-sim` and the emitted-Verilog
//! simulation (`lilac-vsim`) on every output of every cycle.
//!
//! Register **retiming** — relocating `Reg`/`Delay` stages across
//! combinational logic to shorten the estimated critical path, scored by
//! `lilac-synth`'s timing model — lives in the [`retime`] module as a
//! separate entry point ([`retime()`](retime())/[`retime_with_stats`]):
//! unlike the shrinking passes above it deliberately trades register
//! *placement* (and sometimes register count) for frequency, so it is not
//! part of the node-count-monotone [`optimize`] fixpoint; the fuzzer's
//! *seventh* oracle holds its cycle-exactness the same way.
//!
//! # Example
//!
//! ```
//! use lilac_ir::{Netlist, NodeKind};
//! use lilac_opt::optimize_with_stats;
//!
//! let mut n = Netlist::new("redundant");
//! let i = n.add_input("i", 8);
//! let a = n.add_const(3, 8);
//! let b = n.add_const(3, 8); // duplicate constant
//! let s1 = n.add_node(NodeKind::Add, vec![i, a], 8, "s1");
//! let s2 = n.add_node(NodeKind::Add, vec![i, b], 8, "s2"); // CSE target
//! let dead = n.add_node(NodeKind::Mul, vec![s1, s2], 8, "dead"); // unread
//! n.add_output("o", s1);
//! n.add_output("p", s2);
//!
//! let (opt, stats) = optimize_with_stats(&n);
//! assert!(opt.node_count() < n.node_count());
//! assert_eq!(opt.output("o"), opt.output("p")); // merged
//! assert!(stats.dead_removed >= 1);
//! # let _ = dead;
//! ```

use lilac_ir::{mask, Netlist, NodeId, NodeKind};
use std::collections::HashMap;

pub mod retime;

pub use retime::{retime, retime_with_stats, RetimeStats};

/// Per-pass rewrite counts and before/after sizes for one [`optimize`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Nodes before optimization (including inputs).
    pub nodes_before: usize,
    /// Nodes after optimization.
    pub nodes_after: usize,
    /// Sequential (state-holding) nodes before optimization.
    pub sequential_before: usize,
    /// Sequential nodes after optimization.
    pub sequential_after: usize,
    /// Nodes rewritten to `Const` by [`fold_constants`].
    pub constants_folded: usize,
    /// Muxes degenerated by [`simplify_muxes`].
    pub muxes_simplified: usize,
    /// Delay chains collapsed / passthroughs propagated by [`fuse_delays`].
    pub delays_fused: usize,
    /// Duplicate nodes merged by [`eliminate_common_subexpressions`].
    pub subexpressions_merged: usize,
    /// Dead nodes swept by [`eliminate_dead_nodes`].
    pub dead_removed: usize,
    /// Nets rewritten to `Const` by [`fold_known_bits`] (dataflow facts the
    /// all-const matcher cannot see).
    pub known_bits_folded: usize,
    /// Mux selects proven constant by dataflow and narrowed to one arm by
    /// [`fold_known_bits`].
    pub mux_selects_narrowed: usize,
    /// Provably-zero high operands stripped from `Concat` nodes by
    /// [`fold_known_bits`].
    pub concat_zeros_stripped: usize,
    /// Pipeline iterations until the fixpoint (at least 1).
    pub iterations: usize,
}

impl OptStats {
    /// Fraction of nodes removed, in `[0, 1)`.
    pub fn node_reduction(&self) -> f64 {
        if self.nodes_before == 0 {
            0.0
        } else {
            1.0 - self.nodes_after as f64 / self.nodes_before as f64
        }
    }

    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> usize {
        self.constants_folded
            + self.muxes_simplified
            + self.delays_fused
            + self.subexpressions_merged
            + self.dead_removed
            + self.known_bits_folded
            + self.mux_selects_narrowed
            + self.concat_zeros_stripped
    }
}

fn node_ids(n: &Netlist) -> Vec<NodeId> {
    n.iter().map(|(id, _)| id).collect()
}

/// Folds every node whose value is a compile-time constant into a `Const`
/// node, using [`Netlist::eval_const`] — the simulator's own combinational
/// semantics — plus the zero-state rule: a `Reg`, `RegEn`, `Delay`, or
/// pipelined core whose (data) operands are constants making its datapath
/// value 0 is constant 0 on *every* cycle, because its pipe powers up
/// zero-filled and can only ever shift zeros in. Returns the number of
/// nodes rewritten.
pub fn fold_constants(n: &mut Netlist) -> usize {
    let mut folded = 0;
    for id in node_ids(n) {
        if matches!(n.node(id).kind, NodeKind::Const(_) | NodeKind::Input(_)) {
            continue;
        }
        let value = match n.eval_const(id) {
            Some(v) => Some(v),
            None => sequential_zero(n, id),
        };
        if let Some(value) = value {
            let node = n.node_mut(id);
            node.kind = NodeKind::Const(value);
            node.inputs = Vec::new();
            folded += 1;
        } else {
            folded += strength_reduce(n, id);
        }
    }
    folded
}

/// One-constant-operand strength reduction: the identities
/// `x + 0 = x - 0 = x | 0 = x ^ 0 = x * 1 = x` (both operand orders for
/// the commutative ones) rewrite the node to a width-preserving `Delay(0)`
/// passthrough of `x` — the same idiom [`simplify_muxes`] uses, so the
/// node's own mask still applies and [`fuse_delays`] propagates it away
/// when widths allow — and the absorbing `x * 0 = x & 0 = 0` rewrites to
/// `Const(0)`. These are exactly the cases [`Netlist::eval_const`]'s
/// all-operands-const matcher cannot see. Returns 1 when a rule fired.
fn strength_reduce(n: &mut Netlist, id: NodeId) -> usize {
    let node = n.node(id);
    let const_of = |x: NodeId| match n.node(x).kind {
        NodeKind::Const(v) => Some(mask(v, n.node(x).width)),
        _ => None,
    };
    enum Rewrite {
        Passthrough(NodeId),
        Zero,
    }
    let (a, b, a_const, b_const) = match node.kind {
        NodeKind::Add
        | NodeKind::Sub
        | NodeKind::Mul
        | NodeKind::And
        | NodeKind::Or
        | NodeKind::Xor => {
            let (a, b) = (node.inputs[0], node.inputs[1]);
            (a, b, const_of(a), const_of(b))
        }
        _ => return 0,
    };
    let rewrite = match (&node.kind, a_const, b_const) {
        // Identities: the surviving operand passes through.
        (NodeKind::Add | NodeKind::Or | NodeKind::Xor, Some(0), _) => Rewrite::Passthrough(b),
        (NodeKind::Add | NodeKind::Sub | NodeKind::Or | NodeKind::Xor, _, Some(0)) => {
            Rewrite::Passthrough(a)
        }
        (NodeKind::Mul, Some(1), _) => Rewrite::Passthrough(b),
        (NodeKind::Mul, _, Some(1)) => Rewrite::Passthrough(a),
        // Absorbing elements.
        (NodeKind::Mul | NodeKind::And, Some(0), _)
        | (NodeKind::Mul | NodeKind::And, _, Some(0)) => Rewrite::Zero,
        _ => return 0,
    };
    let node = n.node_mut(id);
    match rewrite {
        Rewrite::Passthrough(x) => {
            node.kind = NodeKind::Delay(0);
            node.inputs = vec![x];
        }
        Rewrite::Zero => {
            node.kind = NodeKind::Const(0);
            node.inputs = Vec::new();
        }
    }
    1
}

/// The zero-state rule for sequential nodes: returns `Some(0)` when `id` is
/// a state-holding node that provably outputs 0 on every cycle.
fn sequential_zero(n: &Netlist, id: NodeId) -> Option<u64> {
    let node = n.node(id);
    let const_of = |input: NodeId| match n.node(input).kind {
        NodeKind::Const(v) => Some(mask(v, n.node(input).width)),
        _ => None,
    };
    match &node.kind {
        // The enable input is irrelevant: loading 0 and holding 0 agree.
        NodeKind::Reg | NodeKind::RegEn | NodeKind::Delay(_) => {
            (const_of(node.inputs[0])? == 0).then_some(0)
        }
        NodeKind::PipelinedOp { op, .. } => {
            let mut vals = Vec::with_capacity(node.inputs.len());
            for &input in &node.inputs {
                vals.push(const_of(input)?);
            }
            (mask(lilac_ir::pipe_value(*op, &vals), node.width) == 0).then_some(0)
        }
        _ => None,
    }
}

/// Forwarding check: consumers of `from` may read `to` directly only when
/// the two agree in *width* as well as value. Width equality matters even
/// when the forwarded value is provably identical: `Concat` shifts by each
/// operand's declared width, and emitted part-selects index into the
/// operand's declared range, so substituting a narrower (value-equal) node
/// would change downstream semantics.
fn forwardable(n: &Netlist, from: NodeId, to: NodeId) -> bool {
    n.node(to).width == n.node(from).width
}

/// Resolves `remap` chains with path compression and applies the result to
/// every operand edge and output driver. Returns how many entries actually
/// forwarded somewhere.
fn apply_remap(n: &mut Netlist, mut remap: Vec<NodeId>) -> usize {
    let mut changed = 0;
    for i in 0..remap.len() {
        let mut target = remap[i];
        while remap[target.0 as usize] != target {
            target = remap[target.0 as usize];
        }
        remap[i] = target;
        if target.0 as usize != i {
            changed += 1;
        }
    }
    if changed > 0 {
        n.remap_operands(|id| remap[id.0 as usize]);
    }
    changed
}

/// Degenerates multiplexers: a constant select picks its arm statically,
/// identical arms make the select irrelevant, and two *constant* arms
/// Rewrite counts for one [`fold_known_bits`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KnownBitsFolds {
    /// Nets rewritten to `Const`.
    pub consts: usize,
    /// Mux selects proven constant and narrowed to one arm.
    pub mux_selects: usize,
    /// Provably-zero high operands stripped from `Concat` nodes.
    pub concat_zeros: usize,
}

impl KnownBitsFolds {
    /// Total rewrites in the sweep.
    pub fn total(&self) -> usize {
        self.consts + self.mux_selects + self.concat_zeros
    }
}

/// The analysis-fed folder: one `lilac_analysis::analyze` sweep, then three
/// fact-driven rewrites the syntactic passes cannot see.
///
/// * A net whose fact pins it to a single value — for *all* inputs, on
///   *every* cycle (the zero power-up state included) — becomes `Const`.
///   This reaches through dataflow the all-const matcher in
///   [`fold_constants`] never sees: `x & 0b100` feeding a comparison that
///   decides it, an FSM register proven stuck, `x - x`, `x == x`.
/// * A mux whose *select fact* is proven constant (non-zero lower bound, a
///   known-one bit, or an all-zero upper bound) narrows to the surviving
///   arm, exactly like [`simplify_muxes`] does for literal `Const` selects.
/// * A `Concat` whose leading (high-order) operands are provably zero
///   drops them: high zero bits contribute nothing to the value. A concat
///   reduced to one operand degenerates to a `Delay(0)` passthrough.
///
/// Every rewrite is value-preserving under the facts, which over-
/// approximate *reachable* values — so the pass cannot change any output
/// on any cycle, and one analysis sweep stays valid for the whole pass.
/// Netlists the analysis rejects (it requires the same evaluable-netlist
/// preconditions the simulator does) are left untouched. Never adds nodes.
pub fn fold_known_bits(n: &mut Netlist) -> KnownBitsFolds {
    let mut folds = KnownBitsFolds::default();
    let Ok(analysis) = lilac_analysis::analyze(n) else {
        return folds;
    };
    for id in node_ids(n) {
        if matches!(n.node(id).kind, NodeKind::Const(_) | NodeKind::Input(_)) {
            continue;
        }
        if let Some(value) = analysis.fact(id).as_const() {
            let node = n.node_mut(id);
            node.kind = NodeKind::Const(value);
            node.inputs = Vec::new();
            folds.consts += 1;
            continue;
        }
        match n.node(id).kind {
            NodeKind::Mux => {
                let sel = n.node(id).inputs[0];
                // Literal-const selects belong to `simplify_muxes`; this
                // rule adds the selects only dataflow decides.
                if matches!(n.node(sel).kind, NodeKind::Const(_)) {
                    continue;
                }
                if let Some(taken) = lilac_analysis::mux_select(&analysis.fact(sel)) {
                    let arm = n.node(id).inputs[if taken { 1 } else { 2 }];
                    let node = n.node_mut(id);
                    node.kind = NodeKind::Delay(0);
                    node.inputs = vec![arm];
                    folds.mux_selects += 1;
                }
            }
            NodeKind::Concat => {
                let inputs = n.node(id).inputs.clone();
                let mut keep = 0;
                while keep + 1 < inputs.len() && analysis.fact(inputs[keep]).as_const() == Some(0) {
                    keep += 1;
                }
                if keep > 0 {
                    let remaining = inputs[keep..].to_vec();
                    let node = n.node_mut(id);
                    if remaining.len() == 1 {
                        // A one-operand concat is `mask(v, width)` — the
                        // `Delay(0)` passthrough semantics exactly.
                        node.kind = NodeKind::Delay(0);
                    }
                    node.inputs = remaining;
                    folds.concat_zeros += keep;
                }
            }
            _ => {}
        }
    }
    folds
}

/// holding the same value collapse even when they are distinct nodes (the
/// one-non-const-operand case the node-identity check misses; CSE would
/// need a full extra round to expose it). The mux node becomes a
/// `Delay(0)` passthrough of the surviving arm (preserving the mux's own
/// width masking); [`fuse_delays`] then propagates it away when widths
/// allow, and [`eliminate_dead_nodes`] sweeps it. Returns the number of
/// muxes rewritten.
pub fn simplify_muxes(n: &mut Netlist) -> usize {
    let mut simplified = 0;
    for id in node_ids(n) {
        let node = n.node(id);
        if !matches!(node.kind, NodeKind::Mux) {
            continue;
        }
        let (sel, a, b) = (node.inputs[0], node.inputs[1], node.inputs[2]);
        let const_of = |x: NodeId| match n.node(x).kind {
            NodeKind::Const(v) => Some(mask(v, n.node(x).width)),
            _ => None,
        };
        let arm = if a == b {
            Some(a)
        } else {
            match n.node(sel).kind {
                NodeKind::Const(c) => Some(if mask(c, n.node(sel).width) != 0 { a } else { b }),
                // Equal-valued constant arms: the mux masks the chosen
                // arm's value to its own width, so either arm serves
                // (pick `a`).
                _ => match (const_of(a), const_of(b)) {
                    (Some(va), Some(vb)) if va == vb => Some(a),
                    _ => None,
                },
            }
        };
        if let Some(arm) = arm {
            let node = n.node_mut(id);
            node.kind = NodeKind::Delay(0);
            node.inputs = vec![arm];
            simplified += 1;
        }
    }
    simplified
}

/// Collapses delay chains and propagates passthroughs:
///
/// * a `Reg` or `Delay(a)` that is the *sole* consumer of an upstream `Reg`
///   or `Delay(b)` becomes `Delay(a + b)` reading the upstream driver
///   directly (`delay_a ∘ delay_b = delay_{a+b}` as a stream equation under
///   zero power-up state); the emptied stage then falls to dead-node
///   elimination, so registers move rather than duplicate;
/// * consumers of a `Delay(0)` passthrough read its operand directly.
///
/// Both rewrites are width-guarded (a fusion that would skip a narrowing
/// mask is left alone), and chains that loop back into delay nodes —
/// cross-coupled registers, delay rings — are never fused, because walking
/// such a loop would inflate the depth every round instead of converging.
/// Returns the number of rewrites.
pub fn fuse_delays(n: &mut Netlist) -> usize {
    let mut fused = 0;
    // Fan-out counts (operand edges plus output drivers), kept current as
    // fusions rewire edges: fusing *through* a stage another consumer still
    // reads would duplicate its registers instead of eliminating them.
    let mut uses = vec![0usize; n.node_count()];
    for (_, node) in n.iter() {
        for input in &node.inputs {
            uses[input.0 as usize] += 1;
        }
    }
    for (_, driver) in &n.outputs {
        uses[driver.0 as usize] += 1;
    }
    for id in node_ids(n) {
        let node = n.node(id);
        let a = match node.kind {
            NodeKind::Reg => 1,
            NodeKind::Delay(a) => a,
            _ => continue,
        };
        // Never fuse a delay whose upstream chain loops back into delay
        // nodes (cross-coupled registers, delay rings, chains hanging off
        // such rings): each fusion step would walk the loop and grow the
        // depth again next round, so the pipeline would inflate `Delay`
        // depths forever instead of reaching a fixpoint. The streams on a
        // pure-delay loop are identically zero, so there is nothing to win
        // there anyway; folding handles the reachable-constant cases.
        if on_pure_delay_path_to_cycle(n, id) {
            continue;
        }
        let upstream = node.inputs[0];
        let up = n.node(upstream);
        let b = match up.kind {
            NodeKind::Reg => 1,
            NodeKind::Delay(b) => b,
            _ => continue,
        };
        let driver = up.inputs[0];
        // A register-carrying stage (`b > 0`) only fuses when (a) this node
        // is its sole consumer — the stage then dies and its registers
        // move rather than duplicate — and (b) the stage is at least as
        // wide as this node, so its `b` stages re-registered at this
        // node's width cannot *grow* the total register bits (fusing
        // Delay@4 into Delay@16 would turn 4-bit stages into 16-bit ones).
        // A zero-depth stage carries no registers and may always fuse.
        let (w_node, w_up, w_driver) = (node.width, up.width, n.node(driver).width);
        if b > 0 && (uses[upstream.0 as usize] != 1 || w_up < w_node) {
            continue;
        }
        // The intermediate stage's mask must be redundant: it re-masks
        // either something already at least as narrow (the driver) or
        // something that will be masked at least as hard downstream.
        if !(w_up >= w_node || w_up >= w_driver) {
            continue;
        }
        let node = n.node_mut(id);
        node.kind = NodeKind::Delay(a + b);
        node.inputs = vec![driver];
        uses[upstream.0 as usize] -= 1;
        uses[driver.0 as usize] += 1;
        fused += 1;
    }

    // Copy propagation of width-preserving Delay(0) passthroughs.
    propagate_passthroughs(n, fused)
}

/// True when walking upward from `start` through `Reg`/`Delay` data inputs
/// never reaches a non-delay node — i.e. `start` sits on, or feeds from, a
/// cycle made entirely of delay elements. Fusing along such a chain never
/// terminates (conservative: a chain *into* a delay ring is also skipped).
fn on_pure_delay_path_to_cycle(n: &Netlist, start: NodeId) -> bool {
    let mut probe = start;
    for _ in 0..n.node_count() {
        let node = n.node(probe);
        match node.kind {
            NodeKind::Reg | NodeKind::Delay(_) => {
                probe = node.inputs[0];
                if probe == start {
                    return true;
                }
            }
            _ => return false,
        }
    }
    // The walk never left the delay nodes within node_count steps: loop.
    true
}

fn propagate_passthroughs(n: &mut Netlist, fused: usize) -> usize {
    let ids = node_ids(n);
    let mut remap: Vec<NodeId> = ids.clone();
    for id in ids {
        let node = n.node(id);
        if let NodeKind::Delay(0) = node.kind {
            let src = node.inputs[0];
            if src != id && forwardable(n, id, src) {
                remap[id.0 as usize] = src;
            }
        }
    }
    fused + apply_remap(n, remap)
}

/// Merges structurally identical nodes: same kind, same operand list, same
/// width (debug names are ignored). Sequential nodes merge too — all state
/// powers up at zero, so equal drivers mean equal state forever. Later
/// duplicates forward to the earliest representative; the dead copies are
/// left for [`eliminate_dead_nodes`]. Returns the number of nodes merged.
pub fn eliminate_common_subexpressions(n: &mut Netlist) -> usize {
    #[derive(PartialEq, Eq, Hash)]
    struct Key {
        kind: NodeKind,
        inputs: Vec<NodeId>,
        width: u32,
    }
    let ids = node_ids(n);
    let mut remap: Vec<NodeId> = ids.clone();
    let mut seen: HashMap<Key, NodeId> = HashMap::new();
    for id in ids {
        let node = n.node(id);
        if matches!(node.kind, NodeKind::Input(_)) {
            continue;
        }
        // Operands already remapped to their representatives where known
        // (feedback edges to later ids resolve to themselves this round).
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i.0 as usize]).collect();
        let key = Key { kind: node.kind.clone(), inputs, width: node.width };
        match seen.get(&key) {
            Some(&rep) => remap[id.0 as usize] = rep,
            None => {
                seen.insert(key, id);
            }
        }
    }
    apply_remap(n, remap)
}

/// Sweeps every node that no declared output transitively reads. Reachability
/// follows all operand edges, including feedback through sequential nodes;
/// module inputs are always retained (they are the interface, and
/// [`Netlist::inputs`] indices must stay valid). Returns the number of nodes
/// removed.
pub fn eliminate_dead_nodes(n: &mut Netlist) -> usize {
    let mut live = vec![false; n.node_count()];
    let mut stack: Vec<NodeId> = n.outputs.iter().map(|(_, id)| *id).collect();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id.0 as usize], true) {
            continue;
        }
        stack.extend(n.node(id).inputs.iter().copied());
    }
    n.retain_live(&live)
}

/// Runs the full pass pipeline to a fixpoint and returns the optimized
/// netlist. See [`optimize_with_stats`] for the per-pass counts.
///
/// # Panics
///
/// Panics if `netlist` fails [`Netlist::validate`] or contains a
/// combinational cycle, or if the optimizer produces a netlist that fails
/// validation, acquires a combinational cycle, or grows its register
/// bits — the latter would be optimizer bugs, and the differential oracles
/// in `lilac-fuzz` exist to keep them loud.
pub fn optimize(netlist: &Netlist) -> Netlist {
    optimize_with_stats(netlist).0
}

/// [`optimize`], also returning the per-pass [`OptStats`].
///
/// # Panics
///
/// See [`optimize`].
pub fn optimize_with_stats(netlist: &Netlist) -> (Netlist, OptStats) {
    netlist.validate().expect("optimize: input netlist must validate");
    // `validate` does not check for combinational cycles, but the passes
    // assume an evaluable netlist (a Delay(0) loop, for instance, would
    // send copy-propagation's path compression chasing its own tail): fail
    // loudly up front, exactly as the exit check does.
    assert!(
        netlist.combinational_order().is_some(),
        "optimize: input netlist `{}` has a combinational cycle",
        netlist.name
    );
    let mut n = netlist.clone();
    let mut stats = OptStats {
        nodes_before: n.node_count(),
        sequential_before: n.sequential_count(),
        ..OptStats::default()
    };
    // Each pass only ever shrinks or preserves the design, so the pipeline
    // reaches a fixpoint; the cap is a safety net, not a budget.
    for _ in 0..16 {
        stats.iterations += 1;
        let mut changed = 0;
        // Cheap syntactic passes run first so the analysis sweep in
        // `fold_known_bits` sees an already-shrunk netlist (and so literal
        // const-select muxes and all-const nodes stay attributed to the
        // passes that own them); the fixpoint loop feeds its rewrites back
        // through the syntactic passes on the next iteration.
        let folded = fold_constants(&mut n);
        let muxes = simplify_muxes(&mut n);
        let fusions = fuse_delays(&mut n);
        let merged = eliminate_common_subexpressions(&mut n);
        let known = fold_known_bits(&mut n);
        let swept = eliminate_dead_nodes(&mut n);
        stats.constants_folded += folded;
        stats.known_bits_folded += known.consts;
        stats.mux_selects_narrowed += known.mux_selects;
        stats.concat_zeros_stripped += known.concat_zeros;
        stats.muxes_simplified += muxes;
        stats.delays_fused += fusions;
        stats.subexpressions_merged += merged;
        stats.dead_removed += swept;
        changed += folded + known.total() + muxes + fusions + merged + swept;
        if changed == 0 {
            break;
        }
    }
    n.validate().expect("optimize: optimized netlist must validate");
    assert!(
        n.combinational_order().is_some(),
        "optimize: optimized netlist acquired a combinational cycle"
    );
    // Area invariant: no pass may grow the total register bits (delay
    // fusion *moves* stages, it must never duplicate them).
    let register_bits = |n: &Netlist| -> u64 {
        n.iter().map(|(_, node)| node.kind.pipeline_depth() as u64 * node.width as u64).sum()
    };
    assert!(
        register_bits(&n) <= register_bits(netlist),
        "optimize: register bits grew from {} to {}",
        register_bits(netlist),
        register_bits(&n)
    );
    assert_eq!(n.inputs, netlist.inputs, "optimize: input ports are interface");
    assert_eq!(
        n.outputs.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>(),
        netlist.outputs.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>(),
        "optimize: output ports are interface"
    );
    stats.nodes_after = n.node_count();
    stats.sequential_after = n.sequential_count();
    (n, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lilac_ir::PipeOp;
    use lilac_sim::{CompiledSim, SimBackend, Simulator};
    use lilac_util::rng::Rng;

    /// Drives `a` and `b` with the same random stimuli through one
    /// [`SimBackend`] constructor and asserts every output matches on every
    /// cycle.
    fn assert_cycle_exact_with<B: SimBackend>(
        a: &Netlist,
        b: &Netlist,
        seed: u64,
        cycles: usize,
        backend: &str,
        make: impl Fn(&Netlist) -> B,
    ) {
        let mut rng = Rng::new(seed);
        let mut sim_a = make(a);
        let mut sim_b = make(b);
        let outputs = sim_a.output_names();
        for cycle in 0..cycles {
            for port in &a.inputs {
                let value = rng.next_u64();
                sim_a.set_input(&port.name, value);
                sim_b.set_input(&port.name, value);
            }
            for name in &outputs {
                assert_eq!(
                    sim_a.output(name),
                    sim_b.output(name),
                    "output `{name}` diverged at cycle {cycle} of `{}` under the {backend}",
                    a.name
                );
            }
            sim_a.step();
            sim_b.step();
        }
    }

    /// Runs the cycle-exactness check under both simulation backends: the
    /// reference interpreter and the compiled tape.
    fn assert_cycle_exact(a: &Netlist, b: &Netlist, seed: u64, cycles: usize) {
        assert_cycle_exact_with(a, b, seed, cycles, "interpreter", |n| {
            Simulator::new(n).expect("netlist simulates")
        });
        assert_cycle_exact_with(a, b, seed, cycles, "compiled tape", |n| {
            CompiledSim::new(n).expect("netlist compiles")
        });
    }

    #[test]
    fn constant_folding_uses_simulation_semantics() {
        let mut n = Netlist::new("fold");
        let a = n.add_const(200, 8);
        let b = n.add_const(100, 8);
        let sum = n.add_node(NodeKind::Add, vec![a, b], 8, "sum"); // wraps to 44
        let i = n.add_input("i", 8);
        let x = n.add_node(NodeKind::Xor, vec![sum, i], 8, "x");
        n.add_output("o", x);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.constants_folded >= 1);
        let folded = opt.node(opt.node(opt.output("o").unwrap()).inputs[0]).kind.clone();
        let other = opt.node(opt.node(opt.output("o").unwrap()).inputs[1]).kind.clone();
        assert!(
            folded == NodeKind::Const(44) || other == NodeKind::Const(44),
            "44 = (200 + 100) mod 256 must appear: {folded:?} / {other:?}"
        );
        assert_cycle_exact(&n, &opt, 1, 16);
    }

    #[test]
    fn zero_fed_registers_fold_away() {
        let mut n = Netlist::new("zreg");
        let z = n.add_const(0, 8);
        let r1 = n.add_node(NodeKind::Reg, vec![z], 8, "r1");
        let d = n.add_node(NodeKind::Delay(5), vec![r1], 8, "d");
        let i = n.add_input("i", 8);
        let o = n.add_node(NodeKind::Or, vec![d, i], 8, "o");
        let core = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::FMul, latency: 3, ii: 1 },
            vec![z, i],
            8,
            "core0", // 0 * i is not constant: i is not a Const node
        );
        let o2 = n.add_node(NodeKind::Add, vec![o, core], 8, "o2");
        n.add_output("o", o2);
        let (opt, stats) = optimize_with_stats(&n);
        // `0 * i` is not syntactically constant (i is an input), but the
        // known-bits folder proves the FMul core's product is 0 for every
        // input, so *no* state survives at all.
        assert_eq!(opt.sequential_count(), 0, "all state is provably zero: {stats:?}");
        assert!(stats.known_bits_folded >= 1, "{stats:?}");
        assert_cycle_exact(&n, &opt, 2, 24);
    }

    #[test]
    fn cse_merges_duplicates_including_sequential() {
        let mut n = Netlist::new("cse");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let s1 = n.add_node(NodeKind::Add, vec![a, b], 8, "s1");
        let s2 = n.add_node(NodeKind::Add, vec![a, b], 8, "s2");
        let r1 = n.add_node(NodeKind::Reg, vec![s1], 8, "r1");
        let r2 = n.add_node(NodeKind::Reg, vec![s2], 8, "r2");
        let x = n.add_node(NodeKind::Xor, vec![r1, r2], 8, "x"); // == 0
        n.add_output("o", x);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.subexpressions_merged >= 2, "{stats:?}");
        // After CSE merges r1/r2, `r ^ r` is pinned to 0 by the known-bits
        // folder, so the register itself becomes dead and is swept.
        assert_eq!(opt.sequential_count(), 0);
        assert!(stats.known_bits_folded >= 1, "{stats:?}");
        assert_cycle_exact(&n, &opt, 3, 16);
    }

    #[test]
    fn mux_simplification_handles_const_select_and_identical_arms() {
        let mut n = Netlist::new("mux");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let one = n.add_const(1, 1);
        let m1 = n.add_node(NodeKind::Mux, vec![one, a, b], 8, "m1"); // = a
        let sel = n.add_node(NodeKind::Lt, vec![a, b], 1, "sel");
        let m2 = n.add_node(NodeKind::Mux, vec![sel, m1, m1], 8, "m2"); // = m1
        n.add_output("o", m2);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.muxes_simplified >= 2, "{stats:?}");
        assert_eq!(opt.output("o"), opt.input("a"), "both muxes collapse to the input");
        assert_cycle_exact(&n, &opt, 4, 16);
    }

    // -- strength reduction: one-constant-operand identities ---------------

    /// Builds `op(lhs, rhs)` feeding an output (with an extra use of the
    /// non-const input so the netlist stays non-trivial), optimizes, and
    /// returns the optimized netlist plus stats.
    fn reduce_binary(
        op: NodeKind,
        const_val: u64,
        const_on_left: bool,
    ) -> (Netlist, Netlist, OptStats) {
        let mut n = Netlist::new("sr");
        let x = n.add_input("x", 8);
        let k = n.add_const(const_val, 8);
        let (a, b) = if const_on_left { (k, x) } else { (x, k) };
        let node = n.add_node(op, vec![a, b], 8, "node");
        let r = n.add_node(NodeKind::Reg, vec![node], 8, "r");
        n.add_output("o", r);
        let (opt, stats) = optimize_with_stats(&n);
        (n, opt, stats)
    }

    #[test]
    fn strength_reduction_add_zero() {
        for const_on_left in [false, true] {
            let (n, opt, stats) = reduce_binary(NodeKind::Add, 0, const_on_left);
            assert!(stats.constants_folded >= 1, "{stats:?}");
            // The add is gone: the register reads the input directly.
            let reg = opt.output("o").unwrap();
            assert_eq!(opt.node(reg).inputs[0], opt.input("x").unwrap());
            assert_cycle_exact(&n, &opt, 101, 16);
        }
    }

    #[test]
    fn strength_reduction_sub_zero_is_one_sided() {
        let (n, opt, stats) = reduce_binary(NodeKind::Sub, 0, false);
        assert!(stats.constants_folded >= 1, "x - 0 reduces: {stats:?}");
        let reg = opt.output("o").unwrap();
        assert_eq!(opt.node(reg).inputs[0], opt.input("x").unwrap());
        assert_cycle_exact(&n, &opt, 102, 16);

        // 0 - x is NOT x; it must survive untouched.
        let (n, opt, stats) = reduce_binary(NodeKind::Sub, 0, true);
        assert_eq!(stats.constants_folded, 0, "0 - x must not reduce: {stats:?}");
        assert!(opt.iter().any(|(_, node)| node.kind == NodeKind::Sub));
        assert_cycle_exact(&n, &opt, 103, 16);
    }

    #[test]
    fn strength_reduction_mul_one() {
        for const_on_left in [false, true] {
            let (n, opt, stats) = reduce_binary(NodeKind::Mul, 1, const_on_left);
            assert!(stats.constants_folded >= 1, "{stats:?}");
            let reg = opt.output("o").unwrap();
            assert_eq!(opt.node(reg).inputs[0], opt.input("x").unwrap());
            assert_cycle_exact(&n, &opt, 104, 16);
        }
    }

    #[test]
    fn strength_reduction_mul_zero_and_and_zero_absorb() {
        for op in [NodeKind::Mul, NodeKind::And] {
            for const_on_left in [false, true] {
                let (n, opt, stats) = reduce_binary(op.clone(), 0, const_on_left);
                assert!(stats.constants_folded >= 1, "{stats:?}");
                // The whole cone folds to a zero-fed register, which the
                // zero-state rule then folds to a constant output.
                let driver = opt.output("o").unwrap();
                assert_eq!(opt.node(driver).kind, NodeKind::Const(0), "{op:?}");
                assert_cycle_exact(&n, &opt, 105, 16);
            }
        }
    }

    #[test]
    fn strength_reduction_or_xor_zero() {
        for op in [NodeKind::Or, NodeKind::Xor] {
            for const_on_left in [false, true] {
                let (n, opt, stats) = reduce_binary(op.clone(), 0, const_on_left);
                assert!(stats.constants_folded >= 1, "{op:?}: {stats:?}");
                let reg = opt.output("o").unwrap();
                assert_eq!(opt.node(reg).inputs[0], opt.input("x").unwrap(), "{op:?}");
                assert_cycle_exact(&n, &opt, 106, 16);
            }
        }
    }

    #[test]
    fn strength_reduction_respects_width_masks() {
        // x@16 * 1 at a 4-bit node: the passthrough must keep the 4-bit
        // mask, not forward the 16-bit input directly.
        let mut n = Netlist::new("srw");
        let x = n.add_input("x", 16);
        let one = n.add_const(1, 8);
        let m = n.add_node(NodeKind::Mul, vec![x, one], 4, "m");
        n.add_output("o", m);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.constants_folded >= 1, "{stats:?}");
        assert_ne!(opt.output("o"), opt.input("x"), "the 4-bit mask must survive");
        assert_cycle_exact(&n, &opt, 107, 16);
    }

    #[test]
    fn mux_with_equal_constant_arms_collapses() {
        // Mux(sel, Const(7), Const(7)) with a non-const select: the arms
        // are distinct nodes, so the identical-arms (by id) check misses
        // it; the equal-valued-constants rule collapses it.
        let mut n = Netlist::new("muxk");
        let a = n.add_input("a", 8);
        let b = n.add_input("b", 8);
        let sel = n.add_node(NodeKind::Lt, vec![a, b], 1, "sel");
        let k1 = n.add_const(7, 8);
        let k2 = n.add_const(7, 4); // same value at a different width
        let m = n.add_node(NodeKind::Mux, vec![sel, k1, k2], 8, "m");
        let x = n.add_node(NodeKind::Xor, vec![m, a], 8, "x");
        n.add_output("o", x);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.muxes_simplified >= 1, "{stats:?}");
        assert!(!opt.iter().any(|(_, node)| matches!(node.kind, NodeKind::Mux)));
        assert_cycle_exact(&n, &opt, 108, 16);

        // Different values must keep the mux.
        let mut d = Netlist::new("muxd");
        let a = d.add_input("a", 8);
        let b = d.add_input("b", 8);
        let sel = d.add_node(NodeKind::Lt, vec![a, b], 1, "sel");
        let k1 = d.add_const(7, 8);
        let k2 = d.add_const(9, 8);
        let m = d.add_node(NodeKind::Mux, vec![sel, k1, k2], 8, "m");
        d.add_output("o", m);
        let (opt, stats) = optimize_with_stats(&d);
        assert_eq!(stats.muxes_simplified, 0, "{stats:?}");
        assert!(opt.iter().any(|(_, node)| matches!(node.kind, NodeKind::Mux)));
        assert_cycle_exact(&d, &opt, 109, 16);
    }

    #[test]
    fn delay_chains_fuse_end_to_end() {
        let mut n = Netlist::new("chain");
        let i = n.add_input("i", 8);
        let r1 = n.add_node(NodeKind::Reg, vec![i], 8, "r1");
        let r2 = n.add_node(NodeKind::Reg, vec![r1], 8, "r2");
        let d = n.add_node(NodeKind::Delay(3), vec![r2], 8, "d");
        n.add_output("o", d);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.delays_fused >= 2, "{stats:?}");
        let driver = opt.output("o").unwrap();
        assert_eq!(opt.node(driver).kind, NodeKind::Delay(5), "one fused 5-deep delay");
        assert_eq!(opt.node_count(), 2);
        assert_cycle_exact(&n, &opt, 5, 24);
    }

    #[test]
    fn narrowing_delay_chain_is_not_fused() {
        // i (16 bits) -> Delay(1) @ 4 bits -> Delay(1) @ 16 bits: fusing the
        // outer delay onto i would skip the 4-bit mask — and re-register the
        // narrow stage at 16 bits, growing the total register bits.
        let mut n = Netlist::new("narrow");
        let i = n.add_input("i", 16);
        let d1 = n.add_node(NodeKind::Delay(1), vec![i], 4, "d1");
        let d2 = n.add_node(NodeKind::Delay(1), vec![d1], 16, "d2");
        n.add_output("o", d2);
        let (opt, stats) = optimize_with_stats(&n);
        assert_eq!(stats.delays_fused, 0, "{stats:?}");
        assert_cycle_exact(&n, &opt, 6, 24);
    }

    #[test]
    fn widening_delay_chain_is_not_fused_either() {
        // Regression: i@4 -> Delay(1)@4 -> Delay(1)@16. The fusion is
        // value-correct (the 4-bit mask is redundant: the driver is already
        // 4 bits), but `Delay(2)` at 16 bits would carry 32 register bits
        // where the original pair carries 20 — the old width guard allowed
        // this and optimize()'s area invariant then panicked.
        let mut n = Netlist::new("widen");
        let i = n.add_input("i", 4);
        let d1 = n.add_node(NodeKind::Delay(1), vec![i], 4, "d1");
        let d2 = n.add_node(NodeKind::Delay(1), vec![d1], 16, "d2");
        n.add_output("o", d2);
        let (opt, stats) = optimize_with_stats(&n); // must not panic
        assert_eq!(stats.delays_fused, 0, "{stats:?}");
        assert_cycle_exact(&n, &opt, 12, 24);

        // Equal widths on the registered stages still fuse.
        let mut m = Netlist::new("equal");
        let i = m.add_input("i", 4);
        let d1 = m.add_node(NodeKind::Delay(1), vec![i], 4, "d1");
        let d2 = m.add_node(NodeKind::Delay(1), vec![d1], 4, "d2");
        let wide = m.add_node(NodeKind::Delay(0), vec![d2], 16, "wide");
        m.add_output("o", wide);
        let (opt, stats) = optimize_with_stats(&m);
        assert!(stats.delays_fused >= 1, "{stats:?}");
        assert_cycle_exact(&m, &opt, 13, 24);
    }

    #[test]
    fn dead_nodes_are_swept_but_inputs_survive() {
        let mut n = Netlist::new("dead");
        let a = n.add_input("a", 8);
        let b = n.add_input("unused", 8);
        let x = n.add_node(NodeKind::Not, vec![b], 8, "dead_logic");
        let r = n.add_node(NodeKind::Reg, vec![x], 8, "dead_reg");
        let keep = n.add_node(NodeKind::Not, vec![a], 8, "keep");
        n.add_output("o", keep);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.dead_removed >= 2, "{stats:?}");
        assert_eq!(opt.node_count(), 3, "a, unused (interface), keep");
        assert_eq!(opt.inputs.len(), 2, "unused input port is still declared");
        assert_cycle_exact(&n, &opt, 7, 8);
        let _ = (r, b);
    }

    #[test]
    fn cross_coupled_registers_reach_a_fixpoint() {
        // Regression: fusing around a pure-delay loop used to walk the loop
        // every iteration, inflating Delay depths (Delay(33) from two
        // cross-coupled flops) without ever converging.
        let mut n = Netlist::new("cross");
        let seed = n.add_const(0, 8);
        let r1 = n.add_node(NodeKind::Reg, vec![seed], 8, "r1");
        let r2 = n.add_node(NodeKind::Reg, vec![r1], 8, "r2");
        n.set_inputs(r1, vec![r2]);
        n.add_output("a", r1);
        n.add_output("b", r2);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.iterations <= 3, "must converge immediately: {stats:?}");
        assert_eq!(stats.delays_fused, 0, "nothing on the loop may fuse: {stats:?}");
        // The ring powers up at zero and can only ever shift zeros around,
        // so the known-bits folder dissolves it outright; what matters for
        // the fusion regression is that `fuse_delays` (which saw the intact
        // ring on the first iteration) never walked it.
        let depth: u32 = opt.iter().map(|(_, node)| node.kind.pipeline_depth()).sum();
        assert_eq!(depth, 0, "the all-zero ring folds away entirely: {stats:?}");
        assert!(stats.known_bits_folded >= 2, "{stats:?}");
        assert_cycle_exact(&n, &opt, 9, 16);
        assert_eq!(optimize(&opt), opt, "idempotent on the loop");
    }

    #[test]
    fn delay_ring_of_three_reaches_a_fixpoint() {
        let mut n = Netlist::new("ring");
        let seed = n.add_const(0, 4);
        let r1 = n.add_node(NodeKind::Reg, vec![seed], 4, "r1");
        let r2 = n.add_node(NodeKind::Delay(2), vec![r1], 4, "r2");
        let r3 = n.add_node(NodeKind::Reg, vec![r2], 4, "r3");
        n.set_inputs(r1, vec![r3]);
        // A chain hanging off the ring must not fuse *into* it either.
        let tap = n.add_node(NodeKind::Reg, vec![r2], 4, "tap");
        n.add_output("o", tap);
        let (opt, stats) = optimize_with_stats(&n);
        assert!(stats.iterations <= 2, "{stats:?}");
        let depth: u32 = opt.iter().map(|(_, node)| node.kind.pipeline_depth()).sum();
        assert!(depth <= 5, "ring depth must not inflate: {depth}");
        assert_cycle_exact(&n, &opt, 10, 24);
        assert_eq!(optimize(&opt), opt);
    }

    #[test]
    fn fan_out_delay_stage_is_not_duplicated() {
        // d reads x, but x also drives an output: fusing d through x would
        // *duplicate* x's register rather than eliminate it.
        let mut n = Netlist::new("fanout");
        let i = n.add_input("i", 8);
        let x = n.add_node(NodeKind::Reg, vec![i], 8, "x");
        let d = n.add_node(NodeKind::Delay(2), vec![x], 8, "d");
        n.add_output("tap", x);
        n.add_output("o", d);
        let (opt, stats) = optimize_with_stats(&n);
        assert_eq!(stats.delays_fused, 0, "sole-consumer guard must hold: {stats:?}");
        let depth: u32 = opt.iter().map(|(_, node)| node.kind.pipeline_depth()).sum();
        assert_eq!(depth, 3, "register depth must not grow");
        assert_cycle_exact(&n, &opt, 11, 16);
    }

    #[test]
    fn feedback_loops_survive_optimization() {
        // A counter: reg -> add(+1) -> reg. Nothing here is removable, and
        // the loop must not confuse CSE or delay fusion.
        let mut n = Netlist::new("counter");
        let one = n.add_const(1, 8);
        let reg = n.add_node(NodeKind::Reg, vec![one], 8, "count");
        let next = n.add_node(NodeKind::Add, vec![reg, one], 8, "next");
        n.set_inputs(reg, vec![next]);
        n.add_output("o", reg);
        let (opt, _) = optimize_with_stats(&n);
        assert_eq!(opt.sequential_count(), 1);
        assert_cycle_exact(&n, &opt, 8, 24);
    }

    #[test]
    #[should_panic(expected = "combinational cycle")]
    fn combinationally_cyclic_input_panics_instead_of_hanging() {
        // Regression: a Delay(0) loop passes `validate` (it checks widths
        // and arity, not cycles) and used to send copy-propagation's path
        // compression chasing its own tail forever.
        let mut n = Netlist::new("d0loop");
        let a = n.add_input("i", 8);
        let d1 = n.add_node(NodeKind::Delay(0), vec![a], 8, "d1");
        let d2 = n.add_node(NodeKind::Delay(0), vec![d1], 8, "d2");
        n.set_inputs(d1, vec![d2]);
        n.add_output("o", d1);
        assert!(n.validate().is_ok(), "validate alone does not catch the loop");
        let _ = optimize(&n);
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut n = Netlist::new("idem");
        let a = n.add_input("a", 8);
        let c = n.add_const(5, 8);
        let s = n.add_node(NodeKind::Add, vec![a, c], 8, "s");
        let r1 = n.add_node(NodeKind::Reg, vec![s], 8, "r1");
        let r2 = n.add_node(NodeKind::Reg, vec![r1], 8, "r2");
        n.add_output("o", r2);
        let once = optimize(&n);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }

    // -- randomized A/B: optimize(n) ≡ n under the simulator ----------------

    /// Draws a random valid netlist: a typed DAG over every node kind, with
    /// occasional feedback loops closed through sequential nodes.
    fn random_netlist(seed: u64) -> Netlist {
        let mut rng = Rng::new(seed);
        let mut n = Netlist::new(format!("rand_{seed}"));
        let n_inputs = 1 + rng.index(3);
        let mut ids: Vec<NodeId> = Vec::new();
        for i in 0..n_inputs {
            ids.push(n.add_input(format!("i{i}"), 1 + rng.index(16) as u32));
        }
        let n_nodes = 4 + rng.index(28);
        for k in 0..n_nodes {
            let any = |rng: &mut Rng, ids: &[NodeId]| ids[rng.index(ids.len())];
            let width = 1 + rng.index(16) as u32;
            let id = match rng.index(12) {
                0 => n.add_const(rng.next_u64(), width),
                1 => {
                    let a = any(&mut rng, &ids);
                    n.add_node(NodeKind::Reg, vec![a], width, format!("n{k}"))
                }
                2 => {
                    let (a, e) = (any(&mut rng, &ids), any(&mut rng, &ids));
                    n.add_node(NodeKind::RegEn, vec![a, e], width, format!("n{k}"))
                }
                3 => {
                    let a = any(&mut rng, &ids);
                    let d = rng.index(4) as u32;
                    n.add_node(NodeKind::Delay(d), vec![a], width, format!("n{k}"))
                }
                4 => {
                    let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                    let kind = match rng.index(6) {
                        0 => NodeKind::Add,
                        1 => NodeKind::Sub,
                        2 => NodeKind::Mul,
                        3 => NodeKind::And,
                        4 => NodeKind::Or,
                        _ => NodeKind::Xor,
                    };
                    n.add_node(kind, vec![a, b], width, format!("n{k}"))
                }
                5 => {
                    let a = any(&mut rng, &ids);
                    n.add_node(NodeKind::Not, vec![a], width, format!("n{k}"))
                }
                6 => {
                    let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                    let kind = if rng.chance(1, 2) { NodeKind::Eq } else { NodeKind::Lt };
                    n.add_node(kind, vec![a, b], 1, format!("n{k}"))
                }
                7 => {
                    let (s, a, b) = (any(&mut rng, &ids), any(&mut rng, &ids), any(&mut rng, &ids));
                    n.add_node(NodeKind::Mux, vec![s, a, b], width, format!("n{k}"))
                }
                8 => {
                    let a = any(&mut rng, &ids);
                    let lo = rng.index(8) as u32;
                    n.add_node(NodeKind::Slice { lo }, vec![a], width, format!("n{k}"))
                }
                9 => {
                    let parts = 1 + rng.index(3);
                    let inputs: Vec<NodeId> = (0..parts).map(|_| any(&mut rng, &ids)).collect();
                    n.add_node(NodeKind::Concat, inputs, width, format!("n{k}"))
                }
                10 => {
                    let (a, b) = (any(&mut rng, &ids), any(&mut rng, &ids));
                    let op = if rng.chance(1, 2) { PipeOp::FAdd } else { PipeOp::IntMul };
                    let latency = rng.index(4) as u32;
                    n.add_node(
                        NodeKind::PipelinedOp { op, latency, ii: 1 },
                        vec![a, b],
                        width,
                        format!("n{k}"),
                    )
                }
                _ => {
                    let a = any(&mut rng, &ids);
                    n.add_node(NodeKind::Delay(0), vec![a], width, format!("n{k}"))
                }
            };
            ids.push(id);
        }
        // Occasionally close a feedback loop through a sequential node (its
        // data operand may legally read anything, including later nodes).
        for _ in 0..rng.index(3) {
            let id = ids[rng.index(ids.len())];
            if n.node(id).kind.is_sequential() && !matches!(n.node(id).kind, NodeKind::RegEn) {
                let target = ids[rng.index(ids.len())];
                n.set_inputs(id, vec![target]);
            }
        }
        let n_outputs = 1 + rng.index(3);
        for o in 0..n_outputs {
            let pick = ids[ids.len() / 2 + rng.index(ids.len() - ids.len() / 2)];
            n.add_output(format!("o{o}"), pick);
        }
        n
    }

    #[test]
    fn optimized_netlists_are_cycle_exact_on_random_designs() {
        let mut nontrivial = 0;
        for seed in 0..150 {
            let n = random_netlist(seed);
            assert!(n.validate().is_ok(), "seed {seed}");
            let (opt, stats) = optimize_with_stats(&n);
            assert!(
                stats.nodes_after <= stats.nodes_before,
                "seed {seed}: optimizer grew the netlist: {stats:?}"
            );
            if stats.total_rewrites() > 0 {
                nontrivial += 1;
            }
            assert_cycle_exact(&n, &opt, seed ^ 0xDEAD, 24);
        }
        assert!(nontrivial > 100, "the generator must exercise the passes: {nontrivial}");
    }

    #[test]
    fn optimization_is_deterministic() {
        for seed in 0..20 {
            let n = random_netlist(seed);
            let (a, sa) = optimize_with_stats(&n);
            let (b, sb) = optimize_with_stats(&n);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(sa, sb, "seed {seed}");
        }
    }
}
