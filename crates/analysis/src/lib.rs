//! Known-bits + unsigned-interval abstract interpretation over netlists.
//!
//! For every net the analysis computes an [`AbsValue`]: a per-bit
//! known-0/known-1/unknown mask pair joined with an unsigned interval
//! `[lo, hi]`, both over the node's masked output value. The transfer
//! functions mirror [`lilac_ir::NodeKind::comb_value`] / [`lilac_ir::pipe_value`]
//! operation by operation — the same wrapping adds, the same mux select
//! rule, the same concat layout — so the abstract and concrete evaluators
//! cannot drift: any divergence is a containment violation the fuzzer's
//! eleventh oracle reports.
//!
//! Sequential nodes start from the zero power-up state (registers and delay
//! lines reset to 0, exactly as `lilac-sim` and the Verilog backend define)
//! and accumulate their data-input facts across a fixpoint sweep; intervals
//! are widened to full range after [`WIDEN_ROUND`] rounds so feedback loops
//! (counters, FSM state) terminate, with a hard cap forcing still-moving
//! facts to ⊤ long before the sweep count could matter.
//!
//! The three consumers are:
//!
//! * the fuzzer's eleventh differential oracle (`lilac-fuzz`): every
//!   simulated value on every net, every cycle, every lane must satisfy
//!   [`AbsValue::contains`];
//! * the optimizer's `fold_known_bits` pass (`lilac-opt`): facts that pin a
//!   net to a single value, a mux to one arm, or a concat operand to zero
//!   become rewrites;
//! * the lint surface ([`lint`]): truncating widths, statically-decided
//!   comparisons, dead mux arms, and unfolded constant nets.

use lilac_ir::{mask, Netlist, Node, NodeId, NodeKind, PipeOp};

pub mod lint;

/// All-ones mask for `width` bits (`width >= 64` saturates to all 64 bits).
#[inline]
fn mask_bits(width: u32) -> u64 {
    mask(u64::MAX, width)
}

/// Mask of the `n` lowest bits, saturating at 64.
#[inline]
fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Number of bits needed to represent `x` (0 for 0).
#[inline]
fn bitlen(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// Interval widening starts on this fixpoint round: earlier rounds join
/// intervals exactly (catching small saturating counters), later rounds
/// send any still-growing bound to the width's full range.
const WIDEN_ROUND: u32 = 3;

/// Hard termination cap: any sequential fact still moving after this many
/// rounds is forced to ⊤. The known-bits half shrinks monotonically (at
/// most 128 single-bit steps per node) and widened intervals settle in two
/// steps, so real netlists converge in a handful of rounds; the cap is a
/// backstop, not a tuning knob.
const MAX_ROUNDS: u32 = 40;

/// An abstract value: known bits plus an unsigned interval, both describing
/// a net's masked output value.
///
/// Invariants (established by [`AbsValue::canon`]):
/// * `ones & zeros == 0` — no bit is known to be both;
/// * every bit at or above `width` is in `zeros` (values are masked);
/// * `ones <= lo <= hi <= !zeros` — the interval and the bit masks agree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AbsValue {
    /// Width of the net this value describes (facts above 64 saturate).
    pub width: u32,
    /// Bits known to be 0 (includes everything at or above `width`).
    pub zeros: u64,
    /// Bits known to be 1.
    pub ones: u64,
    /// Inclusive unsigned lower bound.
    pub lo: u64,
    /// Inclusive unsigned upper bound.
    pub hi: u64,
}

impl AbsValue {
    /// The unconstrained value of a `width`-bit net.
    pub fn top(width: u32) -> AbsValue {
        let m = mask_bits(width);
        AbsValue { width, zeros: !m, ones: 0, lo: 0, hi: m }
    }

    /// The exact constant `value` (masked) on a `width`-bit net.
    pub fn constant(value: u64, width: u32) -> AbsValue {
        let v = mask(value, width);
        AbsValue { width, zeros: !v, ones: v, lo: v, hi: v }
    }

    /// True if `value` is allowed by both the known bits and the interval.
    #[inline]
    pub fn contains(&self, value: u64) -> bool {
        value & self.ones == self.ones
            && value & self.zeros == 0
            && self.lo <= value
            && value <= self.hi
    }

    /// The single value this fact pins the net to, if any.
    pub fn as_const(&self) -> Option<u64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// True when this fact carries no information beyond the width mask.
    pub fn is_top(&self) -> bool {
        *self == AbsValue::top(self.width)
    }

    /// True if `self` is at least as precise as `other` (pointwise: knows a
    /// superset of the bits and a subinterval). Used by the optimizer
    /// monotonicity property test.
    pub fn at_least_as_precise(&self, other: &AbsValue) -> bool {
        self.ones & other.ones == other.ones
            && self.zeros & other.zeros == other.zeros
            && self.lo >= other.lo
            && self.hi <= other.hi
    }

    /// Propagates facts between the two halves until stable: known bits
    /// clamp the interval, interval bounds reveal high known bits, and a
    /// shared `lo`/`hi` prefix is known outright. Pure refinement — the set
    /// of concrete values described never changes.
    pub fn canon(mut self) -> AbsValue {
        let m = mask_bits(self.width);
        self.ones &= m;
        self.zeros |= !m;
        loop {
            let before = self;
            self.lo = self.lo.max(self.ones);
            self.hi = self.hi.min(!self.zeros);
            // Bits at or above bitlen(hi) can never be set.
            self.zeros |= !low_mask(bitlen(self.hi));
            // Bits above the highest bit where lo and hi differ are the
            // same for every value in [lo, hi].
            let diff = self.lo ^ self.hi;
            let prefix = !low_mask(bitlen(diff));
            self.ones |= self.lo & prefix;
            self.zeros |= !self.lo & prefix;
            if self == before {
                break;
            }
        }
        debug_assert!(
            self.ones & self.zeros == 0 && self.lo <= self.hi,
            "canon produced an empty abstract value: {self:?}"
        );
        self
    }

    /// Least upper bound: keeps only the bits both sides know and the hull
    /// of the two intervals. Both sides must describe the same width.
    pub fn join(&self, other: &AbsValue) -> AbsValue {
        debug_assert_eq!(self.width, other.width, "join across widths");
        AbsValue {
            width: self.width,
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
        .canon()
    }

    /// Widened join for feedback loops: any interval bound that moved since
    /// `self` jumps straight to the width's extreme instead of creeping.
    pub fn widen(&self, next: &AbsValue) -> AbsValue {
        let joined = self.join(next);
        let lo = if joined.lo < self.lo { 0 } else { joined.lo };
        let hi = if joined.hi > self.hi { mask_bits(self.width) } else { joined.hi };
        AbsValue { width: self.width, zeros: joined.zeros, ones: joined.ones, lo, hi }.canon()
    }

    /// Narrows a (possibly wider) fact to `width` bits, mirroring the
    /// `mask(raw, width)` step that ends every concrete evaluation. The
    /// interval survives only when no described value can actually wrap.
    pub fn truncate(&self, width: u32) -> AbsValue {
        let m = mask_bits(width);
        let (lo, hi) = if self.hi <= m { (self.lo, self.hi) } else { (0, m) };
        AbsValue { width, zeros: (self.zeros & m) | !m, ones: self.ones & m, lo, hi }.canon()
    }

    /// Length of the run of known low bits (64 when fully known).
    #[inline]
    fn known_run(&self) -> u32 {
        (!(self.zeros | self.ones)).trailing_zeros()
    }

    /// Number of low bits known to be zero.
    #[inline]
    fn trailing_known_zeros(&self) -> u32 {
        (!self.zeros).trailing_zeros()
    }
}

impl std::fmt::Display for AbsValue {
    /// Renders as `const 0x..` for pinned nets, else the known-bit pattern
    /// (MSB first, `?` for unknown) plus the interval. Deterministic; used
    /// verbatim in lint messages and the golden lint baseline.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(c) = self.as_const() {
            return write!(f, "const {c:#x}");
        }
        let w = self.width.min(64);
        write!(f, "0b")?;
        for i in (0..w).rev() {
            let bit = 1u64 << i;
            if self.ones & bit != 0 {
                write!(f, "1")?;
            } else if self.zeros & bit != 0 {
                write!(f, "0")?;
            } else {
                write!(f, "?")?;
            }
        }
        write!(f, " in [{}, {}]", self.lo, self.hi)
    }
}

/// Raw (width-64) abstract addition, mirroring `wrapping_add`: the low run
/// of bits known on both sides determines the sum's low bits exactly (carry
/// only travels upward), and the interval wraps like the concrete sum does.
fn abs_add(a: &AbsValue, b: &AbsValue) -> AbsValue {
    let t = a.known_run().min(b.known_run());
    let lm = low_mask(t);
    let s = (a.ones & lm).wrapping_add(b.ones & lm);
    let (ones, zeros) = (s & lm, !s & lm);
    let (sl, sh) = (a.lo as u128 + b.lo as u128, a.hi as u128 + b.hi as u128);
    let (lo, hi) = if sh <= u64::MAX as u128 {
        (sl as u64, sh as u64)
    } else if sl > u64::MAX as u128 {
        // Every sum wraps exactly once; order is preserved.
        ((sl - (1u128 << 64)) as u64, (sh - (1u128 << 64)) as u64)
    } else {
        (0, u64::MAX)
    };
    AbsValue { width: 64, zeros, ones, lo, hi }.canon()
}

/// Raw abstract subtraction, mirroring `wrapping_sub`: exact when the
/// intervals prove the difference never (or always) wraps.
fn abs_sub(a: &AbsValue, b: &AbsValue) -> AbsValue {
    let t = a.known_run().min(b.known_run());
    let lm = low_mask(t);
    let s = (a.ones & lm).wrapping_sub(b.ones & lm);
    let (ones, zeros) = (s & lm, !s & lm);
    let (lo, hi) = if a.lo >= b.hi {
        (a.lo - b.hi, a.hi - b.lo)
    } else if a.hi < b.lo {
        // Every difference is negative and wraps exactly once.
        (a.lo.wrapping_sub(b.hi), a.hi.wrapping_sub(b.lo))
    } else {
        (0, u64::MAX)
    };
    AbsValue { width: 64, zeros, ones, lo, hi }.canon()
}

/// Raw abstract multiplication, mirroring `wrapping_mul`: low known runs
/// multiply exactly, trailing known zeros accumulate, and the interval
/// survives only when the extreme product cannot overflow 64 bits.
fn abs_mul(a: &AbsValue, b: &AbsValue) -> AbsValue {
    let t = a.known_run().min(b.known_run());
    let lm = low_mask(t);
    let p = (a.ones & lm).wrapping_mul(b.ones & lm);
    let mut ones = p & lm;
    let mut zeros = !p & lm;
    // tz(x*y) >= tz(x) + tz(y).
    zeros |= low_mask(a.trailing_known_zeros().saturating_add(b.trailing_known_zeros()));
    ones &= !zeros;
    let top = a.hi as u128 * b.hi as u128;
    let (lo, hi) = if top <= u64::MAX as u128 {
        ((a.lo as u128 * b.lo as u128) as u64, top as u64)
    } else {
        (0, u64::MAX)
    };
    AbsValue { width: 64, zeros, ones, lo, hi }.canon()
}

/// Raw abstract bitwise NOT over the full 64-bit value (bits above the
/// operand's width flip to known ones, exactly as concrete `!v` does before
/// the result mask).
fn abs_not(a: &AbsValue) -> AbsValue {
    AbsValue { width: 64, zeros: a.ones, ones: a.zeros, lo: !a.hi, hi: !a.lo }.canon()
}

fn abs_and(a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        width: 64,
        zeros: a.zeros | b.zeros,
        ones: a.ones & b.ones,
        lo: 0,
        hi: a.hi.min(b.hi),
    }
    .canon()
}

fn abs_or(a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        width: 64,
        zeros: a.zeros & b.zeros,
        ones: a.ones | b.ones,
        lo: a.lo.max(b.lo),
        hi: low_mask(bitlen(a.hi).max(bitlen(b.hi))),
    }
    .canon()
}

fn abs_xor(a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        width: 64,
        zeros: (a.zeros & b.zeros) | (a.ones & b.ones),
        ones: (a.ones & b.zeros) | (a.zeros & b.ones),
        lo: 0,
        hi: low_mask(bitlen(a.hi).max(bitlen(b.hi))),
    }
    .canon()
}

/// Raw abstract right shift by a constant, mirroring `v >> lo` with the
/// out-of-range guard the concrete evaluators apply (`lo >= 64` reads 0).
fn abs_shr(a: &AbsValue, sh: u32) -> AbsValue {
    if sh >= 64 {
        return AbsValue::constant(0, 64);
    }
    AbsValue {
        width: 64,
        zeros: !((!a.zeros) >> sh),
        ones: a.ones >> sh,
        lo: a.lo >> sh,
        hi: a.hi >> sh,
    }
    .canon()
}

/// Raw abstract concatenation, mirroring the concrete accumulator loop:
/// `acc = (acc << w) | operand`, with a 64-bit-wide operand replacing the
/// accumulator outright (exactly the guarded concrete semantics).
fn abs_concat(operands: &[AbsValue]) -> AbsValue {
    let mut acc = AbsValue::constant(0, 64);
    for op in operands {
        let w = op.width;
        if w >= 64 {
            acc = AbsValue { width: 64, ..*op };
            continue;
        }
        let lm = low_mask(w);
        let ones = (acc.ones << w) | (op.ones & lm);
        let zeros = (acc.zeros << w) | (op.zeros & lm);
        let top = ((acc.hi as u128) << w) + (op.hi & lm) as u128;
        let (lo, hi) = if top <= u64::MAX as u128 {
            ((acc.lo << w) + (op.lo & lm), top as u64)
        } else {
            (0, u64::MAX)
        };
        acc = AbsValue { width: 64, zeros, ones, lo, hi }.canon();
    }
    acc
}

/// Raw abstract model of a pipelined core's datapath, mirroring
/// [`lilac_ir::pipe_value`] case by case (missing operands read constant 0).
fn abs_pipe(op: PipeOp, operands: &[AbsValue]) -> AbsValue {
    let get = |i: usize| operands.get(i).copied().unwrap_or_else(|| AbsValue::constant(0, 64));
    match op {
        PipeOp::FAdd => abs_add(&get(0), &get(1)),
        PipeOp::FMul | PipeOp::IntMul => abs_mul(&get(0), &get(1)),
        // checked_div(0) reads 0, and v / d <= v for d >= 1, so the
        // dividend's upper bound survives.
        PipeOp::Div => AbsValue { width: 64, zeros: 0, ones: 0, lo: 0, hi: get(0).hi }.canon(),
        PipeOp::Mac => abs_add(&abs_mul(&get(0), &get(1)), &get(2)),
        PipeOp::Conv { .. } | PipeOp::Fft { .. } => {
            let mut acc = AbsValue::constant(0, 64);
            for v in operands {
                acc = abs_add(&acc, v);
            }
            acc
        }
    }
}

/// The 1-bit raw fact for a comparison outcome.
fn abs_bool(known: Option<bool>) -> AbsValue {
    match known {
        Some(b) => AbsValue::constant(b as u64, 64),
        None => AbsValue { width: 64, zeros: !1, ones: 0, lo: 0, hi: 1 }.canon(),
    }
}

/// Abstract equality: decided when the intervals are disjoint, a known bit
/// conflicts, or both sides are the same pinned constant.
fn abs_eq(a: &AbsValue, b: &AbsValue) -> AbsValue {
    if a.hi < b.lo || b.hi < a.lo || (a.ones & b.zeros) | (a.zeros & b.ones) != 0 {
        return abs_bool(Some(false));
    }
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return abs_bool(Some(x == y));
    }
    abs_bool(None)
}

/// Abstract unsigned less-than: decided when the intervals separate.
fn abs_lt(a: &AbsValue, b: &AbsValue) -> AbsValue {
    if a.hi < b.lo {
        abs_bool(Some(true))
    } else if a.lo >= b.hi {
        abs_bool(Some(false))
    } else {
        abs_bool(None)
    }
}

/// The abstract transfer for a combinational node over its operand facts,
/// truncated to the node's width — the abstract mirror of
/// [`NodeKind::comb_value`]. Returns `None` for inputs and state-holding
/// nodes (their facts come from the sequential half of the fixpoint).
pub fn comb_transfer(node: &Node, operands: &[AbsValue]) -> Option<AbsValue> {
    let w = node.width;
    let raw = match &node.kind {
        NodeKind::Input(_) | NodeKind::Reg | NodeKind::RegEn => return None,
        NodeKind::Delay(0) => operands[0],
        NodeKind::Delay(_) => return None,
        NodeKind::PipelinedOp { op, latency: 0, .. } => abs_pipe(*op, operands),
        NodeKind::PipelinedOp { .. } => return None,
        NodeKind::Const(c) => AbsValue::constant(*c, 64),
        NodeKind::Add => abs_add(&operands[0], &operands[1]),
        NodeKind::Sub => {
            if node.inputs.len() == 2 && node.inputs[0] == node.inputs[1] {
                AbsValue::constant(0, 64)
            } else {
                abs_sub(&operands[0], &operands[1])
            }
        }
        NodeKind::Mul => abs_mul(&operands[0], &operands[1]),
        NodeKind::And => abs_and(&operands[0], &operands[1]),
        NodeKind::Or => abs_or(&operands[0], &operands[1]),
        NodeKind::Xor => {
            if node.inputs.len() == 2 && node.inputs[0] == node.inputs[1] {
                AbsValue::constant(0, 64)
            } else {
                abs_xor(&operands[0], &operands[1])
            }
        }
        NodeKind::Not => abs_not(&operands[0]),
        NodeKind::Eq => {
            if node.inputs.len() == 2 && node.inputs[0] == node.inputs[1] {
                abs_bool(Some(true))
            } else {
                abs_eq(&operands[0], &operands[1])
            }
        }
        NodeKind::Lt => {
            if node.inputs.len() == 2 && node.inputs[0] == node.inputs[1] {
                abs_bool(Some(false))
            } else {
                abs_lt(&operands[0], &operands[1])
            }
        }
        NodeKind::Mux => {
            let sel = &operands[0];
            let (a, b) = (operands[1].truncate(w), operands[2].truncate(w));
            return Some(match mux_select(sel) {
                Some(true) => a,
                Some(false) => b,
                None => a.join(&b),
            });
        }
        NodeKind::Slice { lo } => abs_shr(&operands[0], *lo),
        NodeKind::Concat => abs_concat(operands),
    };
    Some(raw.truncate(w))
}

/// What a mux select fact decides: `Some(true)` when provably non-zero,
/// `Some(false)` when provably zero, `None` when open. Shared by the
/// transfer function, the `fold_known_bits` pass, and the dead-arm lint so
/// they cannot disagree.
pub fn mux_select(sel: &AbsValue) -> Option<bool> {
    if sel.lo > 0 || sel.ones != 0 {
        Some(true)
    } else if sel.hi == 0 {
        Some(false)
    } else {
        None
    }
}

/// The fact flowing *into* a sequential node this cycle (the value it will
/// hold next cycle), truncated to the node's width.
fn seq_inflow(node: &Node, operands: &[AbsValue]) -> Option<AbsValue> {
    match &node.kind {
        // An enable proven always-zero means the register can never load:
        // it holds its power-up value forever, so nothing flows in. This is
        // what lets the analysis discharge `rv::auto_wrap`'s skid buffer in
        // environments that provably never stall.
        NodeKind::RegEn if mux_select(&operands[1]) == Some(false) => None,
        NodeKind::Reg | NodeKind::RegEn | NodeKind::Delay(_) => {
            Some(operands[0].truncate(node.width))
        }
        NodeKind::PipelinedOp { op, .. } => Some(abs_pipe(*op, operands).truncate(node.width)),
        _ => unreachable!("seq_inflow on combinational node"),
    }
}

/// The result of [`analyze`]: one [`AbsValue`] per net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Analysis {
    facts: Vec<AbsValue>,
    /// Fixpoint rounds until convergence (diagnostic only).
    pub rounds: u32,
}

impl Analysis {
    /// The fact for a net.
    #[inline]
    pub fn fact(&self, id: NodeId) -> AbsValue {
        self.facts[id.0 as usize]
    }

    /// All facts, indexed by node id.
    pub fn facts(&self) -> &[AbsValue] {
        &self.facts
    }
}

/// Runs the forward dataflow analysis over a netlist.
///
/// Inputs are ⊤ at their width; sequential nodes start from the zero
/// power-up state and accumulate (join, then widen) the facts flowing into
/// them; combinational nodes are re-derived in topological order every
/// round. At the fixpoint every reachable concrete value of every net, on
/// every cycle, is contained in its fact — the property the fuzzer's
/// eleventh oracle checks against live simulation.
///
/// # Errors
///
/// Returns an error for invalid netlists and combinational cycles (the same
/// preconditions the simulator requires).
pub fn analyze(netlist: &Netlist) -> Result<Analysis, String> {
    netlist.validate()?;
    let order = netlist
        .combinational_order()
        .ok_or_else(|| "analyze: netlist has a combinational cycle".to_string())?;
    let mut facts: Vec<AbsValue> = netlist
        .iter()
        .map(|(_, node)| {
            if node.kind.is_sequential() {
                AbsValue::constant(0, node.width)
            } else {
                AbsValue::top(node.width)
            }
        })
        .collect();
    let mut operands: Vec<AbsValue> = Vec::new();
    let mut round = 0u32;
    loop {
        for &id in &order {
            let node = netlist.node(id);
            if node.kind.is_sequential() || matches!(node.kind, NodeKind::Input(_)) {
                continue;
            }
            operands.clear();
            operands.extend(node.inputs.iter().map(|&i| facts[i.0 as usize]));
            if let Some(fact) = comb_transfer(node, &operands) {
                facts[id.0 as usize] = fact;
            }
        }
        let mut changed = false;
        for (id, node) in netlist.iter() {
            if !node.kind.is_sequential() {
                continue;
            }
            operands.clear();
            operands.extend(node.inputs.iter().map(|&i| facts[i.0 as usize]));
            let old = facts[id.0 as usize];
            let new = match seq_inflow(node, &operands) {
                None => old,
                Some(_) if round >= MAX_ROUNDS => AbsValue::top(node.width),
                Some(inflow) if round >= WIDEN_ROUND => old.widen(&inflow),
                Some(inflow) => old.join(&inflow),
            };
            if new != old {
                facts[id.0 as usize] = new;
                changed = true;
            }
        }
        round += 1;
        if !changed {
            break;
        }
    }
    Ok(Analysis { facts, rounds: round })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lilac_util::rng::Rng;

    fn simple(kind: NodeKind, widths: &[u32], out_width: u32) -> (Netlist, NodeId) {
        let mut n = Netlist::new("t");
        let ins: Vec<NodeId> =
            widths.iter().enumerate().map(|(i, &w)| n.add_input(format!("i{i}"), w)).collect();
        let id = n.add_node(kind, ins, out_width, "out");
        n.add_output("o", id);
        (n, id)
    }

    #[test]
    fn regen_with_dead_enable_is_power_up_constant() {
        // skid_valid = RegEn(valid, capture) with capture = And(valid, Not(1)):
        // the enable is provably zero, so the register holds its power-up
        // zero forever — the fact the optimizer uses to strip inert skid
        // buffers from never-stall LI wrappers.
        let mut n = Netlist::new("t");
        let valid = n.add_input("valid", 1);
        let ready = n.add_const(1, 1);
        let stall = n.add_node(NodeKind::Not, vec![ready], 1, "stall");
        let capture = n.add_node(NodeKind::And, vec![valid, stall], 1, "capture");
        let held = n.add_node(NodeKind::RegEn, vec![valid, capture], 1, "held");
        n.add_output("o", held);
        let a = analyze(&n).unwrap();
        assert_eq!(a.fact(held).as_const(), Some(0), "never-enabled RegEn holds power-up zero");

        // The same register with a live enable must stay unknown.
        let mut n = Netlist::new("t2");
        let valid = n.add_input("valid", 1);
        let ready = n.add_input("ready", 1);
        let stall = n.add_node(NodeKind::Not, vec![ready], 1, "stall");
        let capture = n.add_node(NodeKind::And, vec![valid, stall], 1, "capture");
        let held = n.add_node(NodeKind::RegEn, vec![valid, capture], 1, "held");
        n.add_output("o", held);
        let a = analyze(&n).unwrap();
        assert_eq!(a.fact(held).as_const(), None);
    }

    #[test]
    fn constant_is_exact() {
        let mut n = Netlist::new("t");
        let c = n.add_const(0b1010, 4);
        n.add_output("o", c);
        let a = analyze(&n).unwrap();
        assert_eq!(a.fact(c).as_const(), Some(0b1010));
        assert_eq!(format!("{}", a.fact(c)), "const 0xa");
    }

    #[test]
    fn and_or_known_bits() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x", 8);
        let m = n.add_const(0x0f, 8);
        let and = n.add_node(NodeKind::And, vec![x, m], 8, "and");
        let or = n.add_node(NodeKind::Or, vec![x, m], 8, "or");
        n.add_output("a", and);
        n.add_output("b", or);
        let a = analyze(&n).unwrap();
        assert_eq!(a.fact(and).zeros & 0xff, 0xf0);
        assert_eq!(a.fact(and).hi, 0x0f);
        assert_eq!(a.fact(or).ones, 0x0f);
        assert_eq!(a.fact(or).lo, 0x0f);
    }

    #[test]
    fn add_interval_and_low_bits() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x", 4);
        // x & 0b1100 pins the low two bits to 0; adding 1 pins them to 01.
        let c = n.add_const(0b1100, 4);
        let one = n.add_const(1, 4);
        let and = n.add_node(NodeKind::And, vec![x, c], 4, "and");
        let add = n.add_node(NodeKind::Add, vec![and, one], 4, "add");
        n.add_output("o", add);
        let a = analyze(&n).unwrap();
        let f = a.fact(add);
        assert_eq!(f.ones & 0b11, 0b01, "low bits of (x & 0b1100) + 1 are 01: {f}");
        assert_eq!(f.zeros & 0b10, 0b10);
    }

    #[test]
    fn comparisons_decided_by_intervals() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x", 3); // [0, 7]
        let c = n.add_const(12, 4);
        let lt = n.add_node(NodeKind::Lt, vec![x, c], 1, "lt");
        let eq = n.add_node(NodeKind::Eq, vec![x, c], 1, "eq");
        let eqx = n.add_node(NodeKind::Eq, vec![x, x], 1, "eqx");
        n.add_output("lt", lt);
        n.add_output("eq", eq);
        n.add_output("eqx", eqx);
        let a = analyze(&n).unwrap();
        assert_eq!(a.fact(lt).as_const(), Some(1), "x < 12 always holds for 3-bit x");
        assert_eq!(a.fact(eq).as_const(), Some(0), "x == 12 never holds for 3-bit x");
        assert_eq!(a.fact(eqx).as_const(), Some(1), "x == x always holds");
    }

    #[test]
    fn mux_dead_arm_and_join() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x", 8);
        let sel = n.add_const(1, 1);
        let a5 = n.add_const(5, 8);
        let b9 = n.add_const(9, 8);
        let dead = n.add_node(NodeKind::Mux, vec![sel, a5, b9], 8, "dead");
        let open_sel = n.add_input("s", 1);
        let open = n.add_node(NodeKind::Mux, vec![open_sel, a5, b9], 8, "open");
        n.add_output("d", dead);
        n.add_output("o", open);
        let _ = x;
        let a = analyze(&n).unwrap();
        assert_eq!(a.fact(dead).as_const(), Some(5));
        let f = a.fact(open);
        assert_eq!((f.lo, f.hi), (5, 9));
        // 5 = 0b0101, 9 = 0b1001: bit 0 known 1, bit 1/2/3 unknown-ish.
        assert_eq!(f.ones & 1, 1);
        assert!(f.contains(5) && f.contains(9));
    }

    #[test]
    fn concat_slice_compose() {
        let mut n = Netlist::new("t");
        let hi = n.add_const(0b101, 3);
        let lo = n.add_input("x", 4);
        let cat = n.add_node(NodeKind::Concat, vec![hi, lo], 7, "cat");
        let back = n.add_node(NodeKind::Slice { lo: 4 }, vec![cat], 3, "back");
        n.add_output("c", cat);
        n.add_output("b", back);
        let a = analyze(&n).unwrap();
        let f = a.fact(cat);
        assert_eq!(f.ones & 0b1110000, 0b1010000);
        assert_eq!(f.zeros & 0b0100000, 0b0100000);
        assert_eq!((f.lo, f.hi), (0b1010000, 0b1011111));
        assert_eq!(a.fact(back).as_const(), Some(0b101));
    }

    #[test]
    fn register_feedback_counter_terminates_and_is_sound() {
        // A classic saturating counter: r' = mux(r < 5, r + 1, r).
        let mut n = Netlist::new("t");
        let r = n.add_node(NodeKind::Reg, vec![], 4, "r");
        let one = n.add_const(1, 4);
        let five = n.add_const(5, 4);
        let add = n.add_node(NodeKind::Add, vec![r, one], 4, "add");
        let lt = n.add_node(NodeKind::Lt, vec![r, five], 1, "lt");
        let mux = n.add_node(NodeKind::Mux, vec![lt, add, r], 4, "mux");
        n.set_inputs(r, vec![mux]);
        n.add_output("o", r);
        let a = analyze(&n).unwrap();
        // Reached values are 0..=5; the widened fact must contain them all.
        for v in 0..=5u64 {
            assert!(a.fact(r).contains(v), "counter fact {} misses {v}", a.fact(r));
        }
    }

    #[test]
    fn free_running_wrap_counter_widens_to_full_range() {
        let mut n = Netlist::new("t");
        let r = n.add_node(NodeKind::Reg, vec![], 3, "r");
        let one = n.add_const(1, 3);
        let add = n.add_node(NodeKind::Add, vec![r, one], 3, "add");
        n.set_inputs(r, vec![add]);
        n.add_output("o", r);
        let a = analyze(&n).unwrap();
        for v in 0..8u64 {
            assert!(a.fact(r).contains(v));
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x", 16);
        let r = n.add_node(NodeKind::Reg, vec![x], 16, "r");
        let s = n.add_node(NodeKind::Sub, vec![r, x], 16, "s");
        n.add_output("o", s);
        let a = analyze(&n).unwrap();
        let b = analyze(&n).unwrap();
        assert_eq!(a, b);
    }

    /// Brute-force soundness: tiny random netlists, exhaustively simulated
    /// via `comb_value` on random inputs; every concrete value must be
    /// contained in its fact.
    #[test]
    fn random_comb_netlists_are_contained() {
        for seed in 0..200u64 {
            let mut rng = Rng::new(seed);
            let mut n = Netlist::new("t");
            let mut pool: Vec<NodeId> = (0..3)
                .map(|i| n.add_input(format!("i{i}"), 1 + (rng.next_u64() % 8) as u32))
                .collect();
            for k in 0..12 {
                let w = 1 + (rng.next_u64() % 8) as u32;
                let pick =
                    |rng: &mut Rng, pool: &[NodeId]| pool[(rng.next_u64() as usize) % pool.len()];
                let a = pick(&mut rng, &pool);
                let b = pick(&mut rng, &pool);
                let c = pick(&mut rng, &pool);
                let kind = match rng.next_u64() % 12 {
                    0 => NodeKind::Add,
                    1 => NodeKind::Sub,
                    2 => NodeKind::Mul,
                    3 => NodeKind::And,
                    4 => NodeKind::Or,
                    5 => NodeKind::Xor,
                    6 => NodeKind::Not,
                    7 => NodeKind::Eq,
                    8 => NodeKind::Lt,
                    9 => NodeKind::Mux,
                    10 => NodeKind::Slice { lo: (rng.next_u64() % 10) as u32 },
                    _ => NodeKind::Concat,
                };
                let inputs = match kind {
                    NodeKind::Not | NodeKind::Slice { .. } => vec![a],
                    NodeKind::Mux => vec![a, b, c],
                    NodeKind::Concat => vec![a, b, c],
                    NodeKind::Eq | NodeKind::Lt => vec![a, b],
                    _ => vec![a, b],
                };
                let w = if matches!(kind, NodeKind::Eq | NodeKind::Lt) { 1 } else { w };
                pool.push(n.add_node(kind, inputs, w, format!("n{k}")));
            }
            let out = *pool.last().unwrap();
            n.add_output("o", out);
            let analysis = analyze(&n).unwrap();
            let order = n.combinational_order().unwrap();
            for _ in 0..64 {
                let mut vals = vec![0u64; n.node_count()];
                for &id in &order {
                    let node = n.node(id);
                    let v = match node.kind {
                        NodeKind::Input(_) => mask(rng.next_u64(), node.width),
                        _ => {
                            let ops: Vec<(u64, u32)> = node
                                .inputs
                                .iter()
                                .map(|&i| (vals[i.0 as usize], n.node(i).width))
                                .collect();
                            node.kind.comb_value(&ops, node.width).unwrap()
                        }
                    };
                    vals[id.0 as usize] = v;
                    let fact = analysis.fact(id);
                    assert!(
                        fact.contains(v),
                        "seed {seed}: node {id} ({:?}) value {v} not in {fact}",
                        node.kind
                    );
                }
            }
        }
    }

    #[test]
    fn width_64_edges() {
        // Everything at the (1 << 64) overflow edge: full-width constants,
        // adds that wrap, concat of a 64-bit operand, slices at the top.
        for w in [1u32, 63, 64] {
            let m = mask_bits(w);
            let mut n = Netlist::new("t");
            let x = n.add_input("x", w);
            let c = n.add_const(m, w);
            let add = n.add_node(NodeKind::Add, vec![x, c], w, "add");
            let cat = n.add_node(NodeKind::Concat, vec![x], w, "cat");
            let not = n.add_node(NodeKind::Not, vec![x], w, "not");
            n.add_output("a", add);
            n.add_output("c", cat);
            n.add_output("n", not);
            let a = analyze(&n).unwrap();
            for x_val in [0u64, 1, m / 2, m.saturating_sub(1), m] {
                let x_val = mask(x_val, w);
                let ops = [(x_val, w), (m, w)];
                let add_v = NodeKind::Add.comb_value(&ops, w).unwrap();
                assert!(a.fact(add).contains(add_v));
                let cat_v = NodeKind::Concat.comb_value(&[(x_val, w)], w).unwrap();
                assert!(a.fact(cat).contains(cat_v));
                assert_eq!(cat_v, x_val, "single-operand concat is identity at width {w}");
                let not_v = NodeKind::Not.comb_value(&[(x_val, w)], w).unwrap();
                assert!(a.fact(not).contains(not_v));
            }
        }
        // Slice with lo past the operand: reads zero, must not panic.
        let (n, id) = simple(NodeKind::Slice { lo: 63 }, &[64], 1);
        let a = analyze(&n).unwrap();
        assert!(a.fact(id).contains(0) && a.fact(id).contains(1));
    }
}
