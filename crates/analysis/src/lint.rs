//! Netlist lints derived from the abstract interpretation facts.
//!
//! Four rules, each tied to a fact the analysis proves for *all* inputs:
//!
//! * `truncating-width` (warning) — a register, delay, or passthrough whose
//!   operand is wider than the node, where the dropped high bits are not
//!   provably zero: information is silently lost on every cycle. A slice
//!   reading entirely past its operand's width is reported under the same
//!   code (it reads constant zeros).
//! * `constant-comparison` (warning) — an `Eq`/`Lt` whose outcome is
//!   statically known even though its operands are not both literal
//!   constants: the guard it feeds can never change direction.
//! * `dead-mux-arm` (warning) — a mux whose select is proven constant by
//!   dataflow (not a literal `Const` select): one arm is unreachable.
//! * `constant-net` (note) — a non-trivial net pinned to a single value but
//!   not yet a `Const` node: `fold_known_bits` fodder, surfaced so unfolded
//!   netlists show where logic is provably inert.
//!
//! Lints are ordered by node id then code, and every message is a pure
//! function of the netlist — deterministic by construction, which is what
//! lets CI diff `lilac-fuzz --lint` output against a golden baseline.

use crate::{mux_select, Analysis};
use lilac_ir::{Netlist, NodeId, NodeKind};
use lilac_util::diag::{Diagnostic, DiagnosticKind};
use lilac_util::span::Span;

/// A single lint finding on one net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    /// Severity (`Warning` for the three behavioural rules, `Note` for
    /// unfolded constants).
    pub severity: DiagnosticKind,
    /// Stable machine-readable rule name.
    pub code: &'static str,
    /// The net the finding is anchored on.
    pub node: NodeId,
    /// Human-readable, deterministic message.
    pub message: String,
}

impl Lint {
    /// Converts to the workspace diagnostic type (spanless: netlists carry
    /// instance paths, not source spans).
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic {
            kind: self.severity,
            message: format!("[{}] {}", self.code, self.message),
            span: Span::dummy(),
            notes: Vec::new(),
        }
    }

    /// One-line rendering used by `lilac-fuzz --lint` and the golden
    /// baseline: `severity [code] node: message`.
    pub fn render(&self) -> String {
        format!("{} [{}] {}: {}", self.severity, self.code, self.node, self.message)
    }
}

/// Runs [`crate::analyze`] and then [`lint_with`].
///
/// # Errors
///
/// Propagates the analysis preconditions (valid netlist, no combinational
/// cycle).
pub fn lint(netlist: &Netlist) -> Result<Vec<Lint>, String> {
    let analysis = crate::analyze(netlist)?;
    Ok(lint_with(netlist, &analysis))
}

/// Applies every lint rule against precomputed facts.
pub fn lint_with(netlist: &Netlist, analysis: &Analysis) -> Vec<Lint> {
    let mut lints = Vec::new();
    for (id, node) in netlist.iter() {
        let fact = analysis.fact(id);
        let m = lilac_ir::mask(u64::MAX, node.width);
        // truncating-width: pass-through-shaped nodes narrower than their
        // data operand, with possibly-set bits above the node's mask.
        let data_operand = match node.kind {
            NodeKind::Reg | NodeKind::RegEn | NodeKind::Delay(_) | NodeKind::Mux => {
                // For a mux both arms matter; check each.
                if matches!(node.kind, NodeKind::Mux) {
                    None
                } else {
                    node.inputs.first().copied()
                }
            }
            _ => None,
        };
        let arm_operands: &[NodeId] = match node.kind {
            NodeKind::Mux => &node.inputs[1..3],
            _ => &[],
        };
        for &op in data_operand.iter().chain(arm_operands) {
            let opn = netlist.node(op);
            if opn.width > node.width && (!analysis.fact(op).zeros) & !m != 0 {
                lints.push(Lint {
                    severity: DiagnosticKind::Warning,
                    code: "truncating-width",
                    node: id,
                    message: format!(
                        "`{}` ({} bits) truncates operand `{}` ({} bits) whose dropped bits are not provably zero",
                        node.name, node.width, opn.name, opn.width
                    ),
                });
            }
        }
        if let NodeKind::Slice { lo } = node.kind {
            let opn = netlist.node(node.inputs[0]);
            if lo >= opn.width {
                lints.push(Lint {
                    severity: DiagnosticKind::Warning,
                    code: "truncating-width",
                    node: id,
                    message: format!(
                        "`{}` slices [{}, {}) entirely past operand `{}` ({} bits); it reads constant zero",
                        node.name,
                        lo,
                        lo + node.width,
                        opn.name,
                        opn.width
                    ),
                });
            }
        }
        // constant-comparison: a decided Eq/Lt over non-literal operands.
        let mut reported_const = false;
        if matches!(node.kind, NodeKind::Eq | NodeKind::Lt) {
            let all_literal =
                node.inputs.iter().all(|&i| matches!(netlist.node(i).kind, NodeKind::Const(_)));
            if let Some(outcome) = fact.as_const() {
                if !all_literal {
                    reported_const = true;
                    lints.push(Lint {
                        severity: DiagnosticKind::Warning,
                        code: "constant-comparison",
                        node: id,
                        message: format!(
                            "comparison `{}` is always {}",
                            node.name,
                            if outcome == 0 { "false" } else { "true" }
                        ),
                    });
                }
            }
        }
        // dead-mux-arm: select decided by dataflow, not by a literal const.
        if matches!(node.kind, NodeKind::Mux) {
            let sel = node.inputs[0];
            if !matches!(netlist.node(sel).kind, NodeKind::Const(_)) {
                if let Some(taken) = mux_select(&analysis.fact(sel)) {
                    let (kept, dead) =
                        if taken { ("first", "second") } else { ("second", "first") };
                    lints.push(Lint {
                        severity: DiagnosticKind::Warning,
                        code: "dead-mux-arm",
                        node: id,
                        message: format!(
                            "mux `{}` always takes its {kept} arm; the {dead} arm is dead",
                            node.name
                        ),
                    });
                }
            }
        }
        // constant-net: pinned by dataflow but not yet folded.
        if !reported_const && !matches!(node.kind, NodeKind::Const(_) | NodeKind::Input(_)) {
            if let Some(c) = fact.as_const() {
                lints.push(Lint {
                    severity: DiagnosticKind::Note,
                    code: "constant-net",
                    node: id,
                    message: format!("net `{}` is the constant {c} but not folded", node.name),
                });
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use lilac_ir::Netlist;

    #[test]
    fn rules_fire_and_render_deterministically() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x", 8);
        let narrow = n.add_node(NodeKind::Reg, vec![x], 4, "narrow");
        let c12 = n.add_const(12, 4);
        let three = n.add_const(3, 8);
        let masked = n.add_node(NodeKind::And, vec![x, three], 8, "masked"); // [0, 3]
        let lt = n.add_node(NodeKind::Lt, vec![masked, c12], 1, "lt"); // always true
        let mux = n.add_node(NodeKind::Mux, vec![lt, x, masked], 8, "mux");
        n.add_output("r", narrow);
        n.add_output("m", mux);
        let lints = lint(&n).unwrap();
        let codes: Vec<&str> = lints.iter().map(|l| l.code).collect();
        assert!(codes.contains(&"truncating-width"), "narrow reg must fire: {codes:?}");
        assert!(codes.contains(&"constant-comparison"), "decided lt must fire: {codes:?}");
        assert!(codes.contains(&"dead-mux-arm"), "pinned mux select must fire: {codes:?}");
        assert_eq!(lint(&n).unwrap(), lints, "linting is deterministic");
        for l in &lints {
            assert!(!l.render().is_empty());
            assert!(l.to_diagnostic().message.starts_with(&format!("[{}]", l.code)));
        }
    }

    #[test]
    fn constant_net_fires_as_note() {
        let mut n = Netlist::new("t");
        let a = n.add_const(2, 4);
        let b = n.add_const(3, 4);
        let add = n.add_node(NodeKind::Add, vec![a, b], 4, "add");
        n.add_output("o", add);
        let lints = lint(&n).unwrap();
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code, "constant-net");
        assert_eq!(lints[0].severity, DiagnosticKind::Note);
    }

    #[test]
    fn clean_netlist_has_no_lints() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x", 8);
        let y = n.add_input("y", 8);
        let add = n.add_node(NodeKind::Add, vec![x, y], 8, "add");
        let r = n.add_node(NodeKind::Reg, vec![add], 8, "r");
        n.add_output("o", r);
        assert!(lint(&n).unwrap().is_empty());
    }
}
