//! Latency-insensitive (LI) baseline designs and ready–valid infrastructure.
//!
//! The paper compares latency-abstract designs against hand-written Verilog
//! implementations that wrap the same generated cores in ready–valid
//! handshakes (Figure 1b, Figure 12). This crate reproduces those baselines
//! as netlists built from the same primitives the LA designs elaborate to,
//! so `lilac-synth` costs both styles with one model:
//!
//! * [`rv`] — reusable ready–valid machinery: valid-tracking shift
//!   registers, skid buffers, small FIFOs, and the three-state send/receive
//!   controllers of Figure 12, all expanded into registers, muxes and
//!   comparators;
//! * [`fpu`] — the LI FPU of §2.2 (Figure 1b) and, for convenience, the
//!   hand-scheduled LS FPU of Figure 2 used by Table 1;
//! * [`gbp`] — the LI Gaussian-blur-pyramid of §7.1, plus the serializer
//!   front-end the LA system uses (Figure 11's role).

use lilac_ir::{Netlist, NodeId, NodeKind, PipeOp};

/// Ready–valid building blocks.
pub mod rv {
    use super::*;

    /// Adds a `depth`-deep, `width`-wide FIFO built from registers, a
    /// write-pointer counter and an output multiplexer tree. Returns the
    /// FIFO's data output node.
    ///
    /// The cost is intentionally structural: `depth × width` flip-flops plus
    /// pointer registers and muxing, which is what makes LI wrappers
    /// expensive for fine-grained modules (§2.2).
    pub fn add_fifo(n: &mut Netlist, data: NodeId, push: NodeId, width: u32, depth: u32) -> NodeId {
        let depth = depth.max(1);
        // Storage registers chained as a shift FIFO with enable.
        let mut stages = Vec::new();
        let mut current = data;
        for k in 0..depth {
            let reg = n.add_node(NodeKind::RegEn, vec![current, push], width, format!("fifo_s{k}"));
            stages.push(reg);
            current = reg;
        }
        // Read pointer: a real wrapping counter. It advances whenever a beat
        // is pushed and wraps at `depth - 1`, so every storage stage is
        // eventually selected. (The historical bug fed the register the
        // constant 1, leaving the pointer stuck and the mux tree dead.)
        let ptr_width = (32 - depth.leading_zeros()).max(1);
        let zero = n.add_const(0, ptr_width);
        let one = n.add_const(1, ptr_width);
        let ptr = n.add_node(NodeKind::Reg, vec![zero], ptr_width, "fifo_rptr");
        let inc = n.add_node(NodeKind::Add, vec![ptr, one], ptr_width, "fifo_rptr_inc");
        let last = n.add_const(depth as u64 - 1, ptr_width);
        let at_last = n.add_node(NodeKind::Eq, vec![ptr, last], 1, "fifo_rptr_wrap");
        let wrapped =
            n.add_node(NodeKind::Mux, vec![at_last, zero, inc], ptr_width, "fifo_rptr_next");
        let stepped = n.add_node(NodeKind::Mux, vec![push, wrapped, ptr], ptr_width, "fifo_rptr_q");
        rewire_first_input(n, ptr, stepped);
        let mut selected = stages[0];
        for (k, &stage) in stages.iter().enumerate().skip(1) {
            let k_const = n.add_const(k as u64, ptr_width);
            let is_k = n.add_node(NodeKind::Eq, vec![ptr, k_const], 1, format!("fifo_sel{k}"));
            selected = n.add_node(
                NodeKind::Mux,
                vec![is_k, stage, selected],
                width,
                format!("fifo_mux{k}"),
            );
        }
        selected
    }

    /// Adds a skid buffer (one-entry elastic buffer): holds the payload when
    /// downstream is not ready. Returns `(data_out, valid_out)`.
    pub fn add_skid_buffer(
        n: &mut Netlist,
        data: NodeId,
        valid: NodeId,
        ready_downstream: NodeId,
        width: u32,
    ) -> (NodeId, NodeId) {
        let stall = n.add_node(NodeKind::Not, vec![ready_downstream], 1, "skid_stall");
        let capture = n.add_node(NodeKind::And, vec![valid, stall], 1, "skid_capture");
        let held = n.add_node(NodeKind::RegEn, vec![data, capture], width, "skid_data");
        let held_valid = n.add_node(NodeKind::RegEn, vec![valid, capture], 1, "skid_valid");
        let out = n.add_node(NodeKind::Mux, vec![held_valid, held, data], width, "skid_mux");
        let out_valid = n.add_node(NodeKind::Or, vec![held_valid, valid], 1, "skid_vmux");
        (out, out_valid)
    }

    /// Adds a valid-tracking shift register of `latency` stages (the "extra
    /// logic that tracks ready and valid" of Figure 1b). Returns the delayed
    /// valid.
    pub fn add_valid_pipe(n: &mut Netlist, valid: NodeId, latency: u32) -> NodeId {
        if latency == 0 {
            return valid;
        }
        n.add_node(NodeKind::Delay(latency), vec![valid], 1, "valid_pipe")
    }

    /// Adds the Figure 12 three-state controller (IDLE / PROC / BLOCKED) used
    /// to drive one generated core through a ready–valid interface. Returns
    /// `(fire, busy)`.
    pub fn add_handshake_fsm(
        n: &mut Netlist,
        valid_in: NodeId,
        ready_in: NodeId,
        steps: u32,
    ) -> (NodeId, NodeId) {
        // State register: 2 bits. Next-state logic from comparisons and
        // muxes; an index counter tracks which chunk is in flight.
        let zero2 = n.add_const(0, 2);
        let state = n.add_node(NodeKind::Reg, vec![zero2, zero2][..1].to_vec(), 2, "fsm_state");
        let idle = n.add_node(NodeKind::Eq, vec![state, zero2], 1, "fsm_is_idle");
        let one2 = n.add_const(1, 2);
        let proc_ = n.add_node(NodeKind::Eq, vec![state, one2], 1, "fsm_is_proc");
        let fire = n.add_node(NodeKind::And, vec![proc_, ready_in], 1, "fsm_fire");
        let start = n.add_node(NodeKind::And, vec![idle, valid_in], 1, "fsm_start");
        let busy = n.add_node(NodeKind::Or, vec![proc_, start], 1, "fsm_busy");

        // Chunk index counter.
        let cnt_w = 32 - steps.max(2).leading_zeros();
        let zero = n.add_const(0, cnt_w);
        let idx = n.add_node(NodeKind::Reg, vec![zero], cnt_w, "fsm_idx");
        let one = n.add_const(1, cnt_w);
        let idx_next = n.add_node(NodeKind::Add, vec![idx, one], cnt_w, "fsm_idx_next");
        let idx_sel = n.add_node(NodeKind::Mux, vec![fire, idx_next, idx], cnt_w, "fsm_idx_sel");
        let last = n.add_const(steps.max(1) as u64 - 1, cnt_w);
        let done = n.add_node(NodeKind::Eq, vec![idx_sel, last], 1, "fsm_done");

        // Next state: IDLE -> PROC on start, PROC -> BLOCKED on done.
        let two2 = n.add_const(2, 2);
        let st_proc = n.add_node(NodeKind::Mux, vec![done, two2, one2], 2, "fsm_next_proc");
        let st_idle = n.add_node(NodeKind::Mux, vec![start, one2, zero2], 2, "fsm_next_idle");
        let next = n.add_node(NodeKind::Mux, vec![proc_, st_proc, st_idle], 2, "fsm_next");
        // Close the state feedback loop.
        rewire_first_input(n, state, next);
        // Close the counter feedback loop.
        rewire_first_input(n, idx, idx_sel);
        (fire, busy)
    }

    /// Wraps an arbitrary elaborated core in a ready–valid shell: the
    /// latency-insensitive counterpart the paper's baselines hand-write,
    /// produced mechanically for *any* latency-abstract design.
    ///
    /// The wrapper re-exposes every data input of `core`, adds `valid_i` /
    /// `ready_i` handshake inputs, tracks validity through a `latency`-deep
    /// valid pipe, and routes every output of the core through a skid
    /// buffer. Outputs are re-exported under their core names plus a
    /// `valid_o` strobe.
    ///
    /// Functional contract (the fuzzer's LA/LI differential oracle): with
    /// `valid_i` and `ready_i` held high, every data output of the wrapper
    /// equals the corresponding core output on every cycle — the handshake
    /// machinery must be purely additive when nobody ever stalls.
    pub fn auto_wrap(core: &Netlist, latency: u32) -> Netlist {
        let mut n = Netlist::new(format!("li_{}", core.name));
        let valid_i = n.add_input("valid_i", 1);
        let ready_i = n.add_input("ready_i", 1);
        let mut drivers = std::collections::HashMap::new();
        for port in &core.inputs {
            let id = n.add_input(port.name.clone(), port.width);
            drivers.insert(port.name.clone(), id);
        }
        let outs = n.inline(core, &drivers, "core");
        let out_valid = add_valid_pipe(&mut n, valid_i, latency);
        // Stable output order: follow the core's own output declaration
        // order rather than the HashMap the inliner returns.
        for (port, _) in &core.outputs {
            let node = outs[&port.name];
            let (held, _held_valid) = add_skid_buffer(&mut n, node, out_valid, ready_i, port.width);
            n.add_output(port.name.clone(), held);
        }
        n.add_output("valid_o", out_valid);
        n
    }

    /// Specializes a ready–valid wrapper to an environment that provably
    /// never stalls: `valid_i` and `ready_i` are tied to constant 1 and all
    /// other ports are re-exposed unchanged.
    ///
    /// This is exactly the operating condition the LA/LI differential
    /// oracle drives ([`auto_wrap`]'s functional contract), expressed as a
    /// netlist. Under it the skid buffer emitted by [`add_skid_buffer`] is
    /// provably inert — its capture enable is constant zero, so both `RegEn`
    /// registers hold their power-up value forever — which the known-bits
    /// analysis proves and `lilac-opt`'s `fold_known_bits` strips.
    pub fn never_stall(wrapped: &Netlist) -> Netlist {
        let mut n = Netlist::new(format!("{}_nostall", wrapped.name));
        let mut drivers = std::collections::HashMap::new();
        for port in &wrapped.inputs {
            let id = if port.name == "valid_i" || port.name == "ready_i" {
                n.add_const(1, port.width)
            } else {
                n.add_input(port.name.clone(), port.width)
            };
            drivers.insert(port.name.clone(), id);
        }
        let outs = n.inline(wrapped, &drivers, "w");
        for (port, _) in &wrapped.outputs {
            n.add_output(port.name.clone(), outs[&port.name]);
        }
        n
    }

    /// Rewires the first operand of a sequential node (used to close FSM and
    /// counter feedback loops after all the combinational logic exists).
    pub fn rewire_first_input(n: &mut Netlist, node: NodeId, new_input: NodeId) {
        let kind = n.node(node).kind.clone();
        assert!(kind.is_sequential(), "feedback must go through a register");
        replace_input(n, node, 0, new_input);
    }

    fn replace_input(n: &mut Netlist, node: NodeId, position: usize, new_input: NodeId) {
        // Netlist does not expose input mutation directly; rebuild the node
        // in place through the public API.
        let mut inputs = n.node(node).inputs.clone();
        inputs[position] = new_input;
        n.set_inputs(node, inputs);
    }
}

/// The FPU baselines of §2 (Table 1).
pub mod fpu {
    use super::*;

    /// The latency-sensitive FPU of Figure 2: forward the operands into the
    /// generated adder and multiplier, delay the adder result and the `op`
    /// select to balance the pipeline, and multiplex the result.
    pub fn ls_fpu(width: u32, add_latency: u32, mul_latency: u32) -> Netlist {
        let mut n = Netlist::new(format!("ls_fpu_a{add_latency}_m{mul_latency}"));
        let a = n.add_input("a", width);
        let b = n.add_input("b", width);
        let op = n.add_input("op", 1);
        let add = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::FAdd, latency: add_latency, ii: 1 },
            vec![a, b],
            width,
            "fadd",
        );
        let mul = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::FMul, latency: mul_latency, ii: 1 },
            vec![a, b],
            width,
            "fmul",
        );
        let max = add_latency.max(mul_latency);
        let add_d = if max > add_latency {
            n.add_node(NodeKind::Delay(max - add_latency), vec![add], width, "add_d")
        } else {
            add
        };
        let mul_d = if max > mul_latency {
            n.add_node(NodeKind::Delay(max - mul_latency), vec![mul], width, "mul_d")
        } else {
            mul
        };
        let op_d = n.add_node(NodeKind::Delay(max), vec![op], 1, "op_d");
        let out = n.add_node(NodeKind::Mux, vec![op_d, add_d, mul_d], width, "result_mux");
        n.add_output("o", out);
        n
    }

    /// The latency-insensitive FPU of Figure 1b: the same compute cores
    /// wrapped in ready–valid handshakes, with valid-tracking pipes, an `op`
    /// FIFO, handshake FSMs and an output skid buffer.
    pub fn li_fpu(width: u32, add_latency: u32, mul_latency: u32) -> Netlist {
        let mut n = ls_fpu(width, add_latency, mul_latency);
        n.rename(format!("li_fpu_a{add_latency}_m{mul_latency}"));
        let result = n.output("o").expect("ls fpu has an output");
        let valid_i = n.add_input("valid_i", 1);
        let ready_i = n.add_input("ready_i", 1);
        let op = n.input("op").expect("op input");
        let a_in = n.input("a").expect("a input");
        let b_in = n.input("b").expect("b input");
        let max = add_latency.max(mul_latency);

        // Input elastic buffers: the wrapper must be able to accept a beat it
        // has already signalled ready for even if the cores stall.
        let (_a_buf, _av) = rv::add_skid_buffer(&mut n, a_in, valid_i, ready_i, width);
        let (_b_buf, _bv) = rv::add_skid_buffer(&mut n, b_in, valid_i, ready_i, width);
        // Result FIFO: holds completed results while the consumer is not
        // ready (the cores cannot be paused mid-pipeline).
        let result_fifo = rv::add_fifo(&mut n, result, ready_i, width, max.max(2) + 2);
        let _ = result_fifo;

        // Valid tracking through both compute pipelines.
        let add_valid = rv::add_valid_pipe(&mut n, valid_i, add_latency);
        let mul_valid = rv::add_valid_pipe(&mut n, valid_i, mul_latency);
        let both = n.add_node(NodeKind::And, vec![add_valid, mul_valid], 1, "valid_join");
        let out_valid = rv::add_valid_pipe(
            &mut n,
            both,
            max.saturating_sub(add_latency.min(mul_latency)).max(1),
        );

        // The op FIFO that keeps selects aligned with in-flight operations.
        let fifo_out = rv::add_fifo(&mut n, op, valid_i, 1, max.max(2) + 2);
        let _sel_check = n.add_node(NodeKind::Eq, vec![fifo_out, op], 1, "sel_check");

        // Handshake FSMs for the producer and consumer sides.
        let (fire_in, busy_in) = rv::add_handshake_fsm(&mut n, valid_i, ready_i, 1);
        let (fire_out, busy_out) = rv::add_handshake_fsm(&mut n, out_valid, ready_i, 1);

        // Output skid buffer.
        let (held, held_valid) = rv::add_skid_buffer(&mut n, result, out_valid, ready_i, width);

        let ready_o = n.add_node(NodeKind::Not, vec![busy_in], 1, "ready_o");
        let accept = n.add_node(NodeKind::And, vec![fire_in, fire_out], 1, "accept");
        let busy = n.add_node(NodeKind::Or, vec![busy_in, busy_out], 1, "busy_any");
        let _ = (accept, busy);
        n.add_output("o_li", held);
        n.add_output("valid_o", held_valid);
        n.add_output("ready_o", ready_o);
        n
    }
}

/// The Gaussian-blur-pyramid baselines of §7 (Figure 13).
pub mod gbp {
    use super::*;

    /// One Aetherling-style convolution core accepting `par` pixels per
    /// transaction (shared by both implementations).
    fn conv_core(n: &mut Netlist, inputs: &[NodeId], width: u32, par: u32, name: &str) -> NodeId {
        let latency = 4 + 16 / par.max(1);
        n.add_node(
            NodeKind::PipelinedOp {
                op: PipeOp::Conv { par },
                latency,
                ii: (16 / par.max(1)).max(1),
            },
            inputs.to_vec(),
            width,
            name.to_string(),
        )
    }

    /// Serializer: registers a 16-pixel window and muxes out `par`-pixel
    /// chunks (the Figure 11 serializer the LA implementation relies on).
    /// Returns the chunk nodes. Its cost shrinks as `par` grows, which is the
    /// source of the Figure 13 trend.
    pub fn add_serializer(n: &mut Netlist, window: &[NodeId], width: u32, par: u32) -> Vec<NodeId> {
        let par = par.max(1) as usize;
        let groups = window.len().div_ceil(par);
        // Hold the window.
        let held: Vec<NodeId> = window
            .iter()
            .enumerate()
            .map(|(i, &px)| n.add_node(NodeKind::Reg, vec![px], width, format!("ser_hold{i}")))
            .collect();
        // Chunk counter.
        let cnt_w = 5;
        let zero = n.add_const(0, cnt_w);
        let one = n.add_const(1, cnt_w);
        let cnt = n.add_node(NodeKind::Reg, vec![zero], cnt_w, "ser_cnt");
        let next = n.add_node(NodeKind::Add, vec![cnt, one], cnt_w, "ser_next");
        rv::rewire_first_input(n, cnt, next);
        // Output muxes: lane j selects held[g*par + j] for the active group g.
        let mut chunk = Vec::new();
        for j in 0..par {
            let mut selected = held[j.min(held.len() - 1)];
            for g in 1..groups {
                let idx = g * par + j;
                if idx >= held.len() {
                    break;
                }
                let g_const = n.add_const(g as u64, cnt_w);
                let is_g =
                    n.add_node(NodeKind::Eq, vec![cnt, g_const], 1, format!("ser_is{g}_{j}"));
                selected = n.add_node(
                    NodeKind::Mux,
                    vec![is_g, held[idx], selected],
                    width,
                    format!("ser_mux{g}_{j}"),
                );
            }
            chunk.push(selected);
        }
        chunk
    }

    /// The latency-abstract GBP *system*: the elaborated Lilac pyramid plus
    /// the serializer front-end that feeds it 16-pixel windows as `par`-wide
    /// chunks. `core` is the netlist elaborated from `lilac-designs`' `Gbp`.
    pub fn la_gbp_system(core: &Netlist, width: u32, par: u32) -> Netlist {
        let mut n = Netlist::new(format!("la_gbp_n{par}"));
        let window: Vec<NodeId> = (0..16).map(|i| n.add_input(format!("px{i}"), width)).collect();
        let chunks = add_serializer(&mut n, &window, width, par);
        let mut drivers = std::collections::HashMap::new();
        for (i, &c) in chunks.iter().enumerate() {
            drivers.insert(format!("px_{i}"), c);
        }
        let outs = n.inline(core, &drivers, "gbp");
        for (i, (name, node)) in outs.iter().enumerate() {
            // Collect the pyramid's chunk outputs back into a window register.
            let reg = n.add_node(NodeKind::Reg, vec![*node], width, format!("deser{i}"));
            n.add_output(format!("out_{name}"), reg);
        }
        n
    }

    /// The latency-insensitive GBP of §7.1: three convolution stages, each
    /// wrapped in the Figure 12 send/receive state machines, with ready–valid
    /// glue, an input window buffer and per-stage skid buffers. Its cost is
    /// roughly independent of `par`, which is the other half of Figure 13.
    pub fn li_gbp(width: u32, par: u32) -> Netlist {
        let mut n = Netlist::new(format!("li_gbp_n{par}"));
        let valid_i = n.add_input("valid_i", 1);
        let ready_i = n.add_input("ready_i", 1);
        let window: Vec<NodeId> = (0..16).map(|i| n.add_input(format!("px{i}"), width)).collect();

        // Full 16-pixel input buffer (the LI design always buffers the whole
        // window so the state machines can extract N-sized chunks).
        let buffered: Vec<NodeId> = window
            .iter()
            .enumerate()
            .map(|(i, &px)| {
                n.add_node(NodeKind::RegEn, vec![px, valid_i], width, format!("buf{i}"))
            })
            .collect();

        let steps = (16 / par.max(1)).max(1);
        let mut stage_data: Vec<NodeId> = buffered;
        let mut valid = valid_i;
        for stage in 0..3 {
            // Send and receive state machines per stage (Figure 12).
            let (fire_send, busy_send) = rv::add_handshake_fsm(&mut n, valid, ready_i, steps);
            let (fire_recv, busy_recv) = rv::add_handshake_fsm(&mut n, valid, ready_i, steps);
            // Chunk extraction muxes (like the serializer, but driven by the
            // send FSM, and always 16-wide on the buffer side).
            let chunk = add_serializer(&mut n, &stage_data, width, par);
            // Every lane of the chunk crosses a ready–valid boundary into the
            // convolution, so each lane gets its own elastic buffer.
            let chunk: Vec<NodeId> = chunk
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let (d, _v) = rv::add_skid_buffer(&mut n, c, valid, ready_i, width);
                    let r = n.add_node(NodeKind::Reg, vec![d], width, format!("lane{stage}_{i}"));
                    r
                })
                .collect();
            let core = conv_core(&mut n, &chunk, width, par, &format!("conv{stage}"));
            // The convolution result is written back into a full-width
            // result buffer entry by entry.
            let mut results = Vec::new();
            for i in 0..16 {
                let en = n.add_node(
                    NodeKind::And,
                    vec![fire_recv, fire_send],
                    1,
                    format!("wr_en{stage}_{i}"),
                );
                let r =
                    n.add_node(NodeKind::RegEn, vec![core, en], width, format!("res{stage}_{i}"));
                results.push(r);
            }
            // Output double buffer: the receive FSM writes into one window
            // while the next stage drains the other.
            let results: Vec<NodeId> = results
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    n.add_node(
                        NodeKind::RegEn,
                        vec![r, fire_recv],
                        width,
                        format!("dbuf{stage}_{i}"),
                    )
                })
                .collect();
            // Valid for the next stage comes out of a skid buffer.
            let (_, v) = rv::add_skid_buffer(&mut n, core, valid, ready_i, width);
            let stall =
                n.add_node(NodeKind::Or, vec![busy_send, busy_recv], 1, format!("stall{stage}"));
            let gated = n.add_node(NodeKind::Not, vec![stall], 1, format!("go{stage}"));
            valid = n.add_node(NodeKind::And, vec![v, gated], 1, format!("valid{stage}"));
            stage_data = results;
        }

        // Blend against the buffered original window and present the outputs
        // through one more ready–valid boundary.
        for (i, (&orig, &blurred)) in window.iter().zip(stage_data.iter()).enumerate() {
            let blend = n.add_node(NodeKind::Add, vec![orig, blurred], width, format!("blend{i}"));
            let (held, _hv) = rv::add_skid_buffer(&mut n, blend, valid, ready_i, width);
            n.add_output(format!("out{i}"), held);
        }
        n.add_output("valid_o", valid);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lilac_synth::estimate;

    #[test]
    fn ls_and_li_fpu_are_valid_netlists() {
        for (a, m) in [(1, 1), (4, 2)] {
            let ls = fpu::ls_fpu(32, a, m);
            let li = fpu::li_fpu(32, a, m);
            assert!(ls.validate().is_ok());
            assert!(li.validate().is_ok());
            assert!(ls.combinational_order().is_some());
            assert!(li.combinational_order().is_some());
        }
    }

    #[test]
    fn li_fpu_costs_more_than_ls_fpu() {
        // The Table 1 relationship: more LUTs, many more registers, and no
        // better frequency.
        for (a, m) in [(1u32, 1u32), (4, 2)] {
            let ls = estimate(&fpu::ls_fpu(32, a, m));
            let li = estimate(&fpu::li_fpu(32, a, m));
            assert!(li.luts > ls.luts, "A={a} M={m}: {li:?} vs {ls:?}");
            assert!(
                li.registers as f64 > 1.5 * ls.registers as f64,
                "A={a} M={m}: {li:?} vs {ls:?}"
            );
            assert!(li.fmax_mhz <= ls.fmax_mhz, "A={a} M={m}");
        }
    }

    #[test]
    fn deeper_ls_fpu_is_faster() {
        let shallow = estimate(&fpu::ls_fpu(32, 1, 1));
        let deep = estimate(&fpu::ls_fpu(32, 4, 2));
        assert!(deep.fmax_mhz > shallow.fmax_mhz);
    }

    #[test]
    fn li_gbp_is_valid_and_roughly_constant_in_par() {
        let mut costs = Vec::new();
        for par in [1u32, 2, 4, 8, 16] {
            let netlist = gbp::li_gbp(8, par);
            assert!(netlist.validate().is_ok(), "par={par}");
            assert!(netlist.combinational_order().is_some(), "par={par}");
            costs.push(estimate(&netlist));
        }
        let min = costs.iter().map(|c| c.registers).min().unwrap();
        let max = costs.iter().map(|c| c.registers).max().unwrap();
        assert!(
            (max as f64) < 1.6 * min as f64,
            "LI register cost should be roughly flat across design points: {min}..{max}"
        );
    }

    #[test]
    fn serializer_cost_shrinks_with_parallelism() {
        let measure = |par: u32| {
            let mut n = Netlist::new("ser");
            let window: Vec<_> = (0..16).map(|i| n.add_input(format!("p{i}"), 8)).collect();
            let chunks = gbp::add_serializer(&mut n, &window, 8, par);
            for (i, c) in chunks.iter().enumerate() {
                n.add_output(format!("o{i}"), *c);
            }
            estimate(&n).luts
        };
        assert!(measure(1) > measure(4));
        assert!(measure(4) > measure(16));
    }

    #[test]
    fn auto_wrap_is_transparent_when_never_stalled() {
        use lilac_sim::Simulator;
        // Wrap the LS FPU; with valid/ready held high the wrapper must be a
        // bit-exact passthrough of the core on every cycle.
        let core = fpu::ls_fpu(16, 3, 1);
        let wrapped = rv::auto_wrap(&core, 3);
        assert!(wrapped.validate().is_ok());
        assert!(wrapped.combinational_order().is_some());
        let cost_core = estimate(&core);
        let cost_wrapped = estimate(&wrapped);
        assert!(cost_wrapped.registers > cost_core.registers, "the shell must cost something");

        let mut core_sim = Simulator::new(&core).unwrap();
        let mut li_sim = Simulator::new(&wrapped).unwrap();
        li_sim.set_input("valid_i", 1);
        li_sim.set_input("ready_i", 1);
        let mut x: u64 = 7;
        for _ in 0..16 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            for (name, v) in [("a", x & 0xFFFF), ("b", (x >> 16) & 0xFFFF), ("op", (x >> 32) & 1)] {
                core_sim.set_input(name, v);
                li_sim.set_input(name, v);
            }
            assert_eq!(core_sim.peek("o"), li_sim.peek("o"));
            core_sim.step();
            li_sim.step();
        }
    }

    #[test]
    fn fifo_read_pointer_is_a_wrapping_counter() {
        use lilac_sim::Simulator;
        // A depth-3 shift FIFO pushed every cycle. Stage k holds the value
        // pushed k+1 edges ago and the read pointer is `edges mod 3`, so the
        // output after edge e is the value pushed at edge e - (e mod 3). A
        // stuck pointer (the historical bug: the register was fed the
        // constant 1) would instead always present stage 1.
        let mut n = Netlist::new("fifo");
        let data = n.add_input("data", 16);
        let push = n.add_input("push", 1);
        let out = rv::add_fifo(&mut n, data, push, 16, 3);
        n.add_output("o", out);
        assert!(n.validate().is_ok());
        assert!(n.combinational_order().is_some(), "pointer feedback must go through the register");

        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input("push", 1);
        let mut got = Vec::new();
        for t in 0..12u64 {
            sim.set_input("data", 100 + t);
            sim.step();
            got.push(sim.output("o"));
        }
        let expected: Vec<u64> = (1..=12u64)
            .map(|e| {
                let k = e % 3;
                if e > k {
                    100 + (e - 1 - k)
                } else {
                    0
                }
            })
            .collect();
        assert_eq!(got, expected, "read pointer must advance and wrap");
        // The pointer visits every stage: the output sequence is not simply
        // the input delayed by a constant (which is all a stuck pointer can
        // produce when pushed every cycle).
        for lag in 1..=3u64 {
            let delayed: Vec<u64> =
                (0..12u64).map(|t| if t >= lag { 100 + t - lag } else { 0 }).collect();
            assert_ne!(got, delayed, "output must not be a fixed {lag}-cycle delay");
        }
    }

    #[test]
    fn handshake_fsm_feedback_is_legal() {
        let mut n = Netlist::new("fsm");
        let v = n.add_input("v", 1);
        let r = n.add_input("r", 1);
        let (fire, busy) = rv::add_handshake_fsm(&mut n, v, r, 4);
        n.add_output("fire", fire);
        n.add_output("busy", busy);
        assert!(n.validate().is_ok());
        assert!(n.combinational_order().is_some(), "feedback must go through the state register");
    }
}
