//! Generator models: synthetic stand-ins for the external hardware
//! generators the paper integrates (§2, §6).
//!
//! The real Lilac compiler shells out to FloPoCo, Vivado's IP core
//! generators, Aetherling, XLS, Spiral, and PipelineC during elaboration and
//! reads back the timing behaviour of the modules they produce. Those tools
//! (and the FPGAs they target) are not available here, so this crate
//! substitutes *generator models*: for the same inputs — bitwidths,
//! performance goals, microarchitecture knobs — each model chooses latencies,
//! initiation intervals, chunk sizes and hold times using rules distilled
//! from the paper (e.g. the Radix-2 divider's latency formula from Figure 9b,
//! or FloPoCo's deeper pipelines at higher frequency targets), and emits a
//! latency-sensitive [`Netlist`](lilac_ir::Netlist) implementing the module.
//!
//! What matters for the reproduction is preserved: output parameters are
//! unknowable until the generator runs, they change when generator inputs
//! change, and the parent design must adapt — which is exactly the code path
//! latency-abstract interfaces exercise.
//!
//! # Example
//!
//! ```
//! use lilac_gen::{GenGoals, GenRequest, GeneratorRegistry};
//!
//! let registry = GeneratorRegistry::with_builtin_tools();
//! let request = GenRequest::new("flopoco", "FPAdd")
//!     .with_param("W", 32)
//!     .with_goals(GenGoals { target_mhz: 280, ..GenGoals::default() });
//! let result = registry.generate(&request)?;
//! assert!(result.out_params["L"] >= 1);
//! # Ok::<(), lilac_gen::GenError>(())
//! ```

pub mod model;
pub mod registry;
pub mod tools;

pub use model::{FpgaFamily, GenError, GenGoals, GenRequest, GenResult, Generator};
pub use registry::GeneratorRegistry;
