//! The individual generator models.
//!
//! | Tool        | Components                                   | Features (Table 3)            |
//! |-------------|----------------------------------------------|-------------------------------|
//! | `pipelinec` | `PipeOp`                                      | in-dep                        |
//! | `flopoco`   | `FPAdd`, `FPMul`                              | in-dep, out-dep               |
//! | `xls`       | `XlsMac`                                      | in-dep, ii-gt-1               |
//! | `spiral`    | `SpiralFft`                                   | in-dep, out-dep, ii-gt-1      |
//! | `aetherling`| `AethConv`                                    | in-dep, out-dep, ii-gt-1, multi |
//! | `vivado`    | `Mult`, `LutMult`, `Rad2`, `HighRad`, `Fft`   | in-dep / out-dep per core     |

use crate::model::{GenError, GenRequest, GenResult, Generator};
use lilac_core::GeneratorFeature;
use lilac_ir::{Netlist, NodeKind, PipeOp};
use std::collections::BTreeMap;

fn clamp(v: f64, lo: u64, hi: u64) -> u64 {
    (v.round() as i64).clamp(lo as i64, hi as i64) as u64
}

fn binary_core(name: &str, op: PipeOp, width: u32, latency: u32, ii: u32) -> Netlist {
    let mut n = Netlist::new(name);
    let a = n.add_input("a", width);
    let b = n.add_input("b", width);
    let core = n.add_node(
        NodeKind::PipelinedOp { op, latency, ii },
        vec![a, b],
        width,
        format!("{}_core", op.mnemonic()),
    );
    n.add_output("o", core);
    n
}

// ---------------------------------------------------------------------------
// FloPoCo
// ---------------------------------------------------------------------------

/// Model of the FloPoCo floating-point core generator [De Dinechin & Pasca].
///
/// Latency grows with the frequency target and the operand width, and shrinks
/// on faster FPGA families — changing either regenerates a module with a
/// different LS interface, which is what forces parents to adapt (§2.1).
pub struct FloPoCo;

impl FloPoCo {
    fn latency(&self, req: &GenRequest, is_add: bool) -> Result<u64, GenError> {
        let w = req.param("W")?;
        if w == 0 || w > 128 {
            return Err(GenError::InvalidConfig {
                tool: "flopoco".into(),
                message: format!("bitwidth {w} out of range 1..=128"),
            });
        }
        let speed = req.goals.family.speed_factor();
        let base = if is_add { 70.0 } else { 140.0 };
        let depth = (w as f64 / 32.0) * (req.goals.target_mhz as f64 / base) / speed;
        Ok(clamp(depth, 1, 16))
    }
}

impl Generator for FloPoCo {
    fn tool_name(&self) -> &'static str {
        "flopoco"
    }

    fn components(&self) -> Vec<&'static str> {
        vec!["FPAdd", "FPMul"]
    }

    fn features(&self) -> Vec<GeneratorFeature> {
        vec![GeneratorFeature::InputDependentTiming, GeneratorFeature::OutputDependentTiming]
    }

    fn generate(&self, req: &GenRequest) -> Result<GenResult, GenError> {
        let w = req.param("W")? as u32;
        let (op, is_add) = match req.component.as_str() {
            "FPAdd" => (PipeOp::FAdd, true),
            "FPMul" => (PipeOp::FMul, false),
            other => {
                return Err(GenError::UnknownComponent {
                    tool: "flopoco".into(),
                    component: other.into(),
                })
            }
        };
        let latency = self.latency(req, is_add)?;
        let mut out_params = BTreeMap::new();
        out_params.insert("L".to_string(), latency);
        let netlist =
            binary_core(&format!("flopoco_{}_{w}", req.component), op, w, latency as u32, 1);
        Ok(GenResult { out_params, netlist })
    }
}

// ---------------------------------------------------------------------------
// Vivado IP cores (§6.1)
// ---------------------------------------------------------------------------

/// Model of the Vivado IP core generators: multiplier, dividers, FFT.
pub struct VivadoIp;

impl VivadoIp {
    /// High-radix divider latency: the user guide's table has no closed form;
    /// this model approximates it.
    fn high_radix_latency(w: u64) -> u64 {
        // Grows roughly with w/2 plus fixed overhead.
        w / 2 + 4
    }

    /// Radix-2 latency formula following Figure 9b.
    fn radix2_latency(w: u64, ii: u64, fractional: bool) -> u64 {
        if fractional && ii > 1 {
            w + 5
        } else if fractional {
            w + 4
        } else if ii > 1 {
            w + 3
        } else {
            w + 2
        }
    }

    fn fft_latency(points: u64) -> u64 {
        // Pipelined streaming FFT: latency ≈ 3·N/2 + setup.
        3 * points / 2 + 12
    }
}

impl Generator for VivadoIp {
    fn tool_name(&self) -> &'static str {
        "vivado"
    }

    fn components(&self) -> Vec<&'static str> {
        vec!["Mult", "LutMult", "Rad2", "HighRad", "Fft"]
    }

    fn features(&self) -> Vec<GeneratorFeature> {
        vec![GeneratorFeature::InputDependentTiming, GeneratorFeature::OutputDependentTiming]
    }

    fn generate(&self, req: &GenRequest) -> Result<GenResult, GenError> {
        let mut out_params = BTreeMap::new();
        let result = match req.component.as_str() {
            "Mult" => {
                // The multiplier takes its latency as an *input* parameter.
                let w = req.param("W")? as u32;
                let l = req.param("L")?;
                binary_core(&format!("vivado_mult_{w}_{l}"), PipeOp::IntMul, w, l as u32, 1)
            }
            "LutMult" => {
                let w = req.param("W")? as u32;
                if w >= 12 {
                    return Err(GenError::InvalidConfig {
                        tool: "vivado".into(),
                        message: format!(
                            "LutMult divider is only recommended for bitwidths < 12 (got {w})"
                        ),
                    });
                }
                out_params.insert("L".to_string(), 8);
                binary_core(&format!("vivado_lutdiv_{w}"), PipeOp::Div, w, 8, 1)
            }
            "Rad2" => {
                let w = req.param("W")?;
                let ii = req.param_or("II", 1);
                if ii >= 9
                    || ii.is_multiple_of(2) && ii != 1 && ii != 2 && ii != 4 && ii != 6 && ii != 8
                {
                    return Err(GenError::InvalidConfig {
                        tool: "vivado".into(),
                        message: format!("Radix-2 divider II must be < 9 (got {ii})"),
                    });
                }
                let fractional = req.param_or("Fr", 0) != 0;
                let l = Self::radix2_latency(w, ii, fractional);
                out_params.insert("L".to_string(), l);
                out_params.insert("II".to_string(), ii);
                binary_core(&format!("vivado_rad2_{w}"), PipeOp::Div, w as u32, l as u32, ii as u32)
            }
            "HighRad" => {
                let w = req.param("W")?;
                let l = Self::high_radix_latency(w);
                out_params.insert("L".to_string(), l);
                binary_core(&format!("vivado_highrad_{w}"), PipeOp::Div, w as u32, l as u32, 1)
            }
            "Fft" => {
                let points = req.param_or("N", req.knob_or("points", 64));
                let w = req.param_or("W", 16) as u32;
                let l = Self::fft_latency(points);
                out_params.insert("L".to_string(), l);
                let mut n = Netlist::new(format!("vivado_fft_{points}"));
                let re = n.add_input("re", w);
                let im = n.add_input("im", w);
                let core = n.add_node(
                    NodeKind::PipelinedOp {
                        op: PipeOp::Fft { points: points as u32 },
                        latency: l as u32,
                        ii: 1,
                    },
                    vec![re, im],
                    w,
                    "fft_core",
                );
                n.add_output("o", core);
                n
            }
            other => {
                return Err(GenError::UnknownComponent {
                    tool: "vivado".into(),
                    component: other.into(),
                })
            }
        };
        Ok(GenResult { out_params, netlist: result })
    }
}

// ---------------------------------------------------------------------------
// Aetherling (§7)
// ---------------------------------------------------------------------------

/// Model of Aetherling's type-directed stream-processing generator.
///
/// The `multipliers` knob trades area for throughput: with `m` multipliers a
/// 4×4 convolution accepts `N = m` pixels per transaction (a factor of 16),
/// holds its inputs for `H` cycles, and produces results after `L` cycles
/// with initiation interval `II ≥ H` — the `in-dep, out-dep, ii-gt-1, multi`
/// row of Table 3.
pub struct Aetherling;

impl Generator for Aetherling {
    fn tool_name(&self) -> &'static str {
        "aetherling"
    }

    fn components(&self) -> Vec<&'static str> {
        vec!["AethConv"]
    }

    fn features(&self) -> Vec<GeneratorFeature> {
        vec![
            GeneratorFeature::InputDependentTiming,
            GeneratorFeature::OutputDependentTiming,
            GeneratorFeature::InitiationIntervalGreaterThanOne,
            GeneratorFeature::MultiCycleInterval,
        ]
    }

    fn generate(&self, req: &GenRequest) -> Result<GenResult, GenError> {
        if req.component != "AethConv" {
            return Err(GenError::UnknownComponent {
                tool: "aetherling".into(),
                component: req.component.clone(),
            });
        }
        let w = req.param_or("W", 8) as u32;
        let m = req.knob_or("multipliers", 4);
        if !(m > 0 && 16 % m == 0) {
            return Err(GenError::InvalidConfig {
                tool: "aetherling".into(),
                message: format!("multipliers must divide 16 (got {m})"),
            });
        }
        // N pixels per transaction; fewer multipliers → the module is only
        // partially pipelined (II > 1) and must hold its inputs longer.
        let n = m;
        let ii = (16 / m).max(1);
        let h = ii.clamp(1, 4);
        let latency = 2 + 16 / m;
        let mut out_params = BTreeMap::new();
        out_params.insert("N".to_string(), n);
        out_params.insert("H".to_string(), h);
        out_params.insert("II".to_string(), ii);
        out_params.insert("L".to_string(), latency);

        let mut netlist = Netlist::new(format!("aeth_conv4x4_m{m}_w{w}"));
        let mut ins = Vec::new();
        for i in 0..n {
            ins.push(netlist.add_input(format!("in_{i}"), w));
        }
        let core = netlist.add_node(
            NodeKind::PipelinedOp {
                op: PipeOp::Conv { par: m as u32 },
                latency: latency as u32,
                ii: ii as u32,
            },
            ins.clone(),
            w,
            "conv_core",
        );
        for i in 0..n {
            // Each output lane carries the convolution result; lanes other
            // than 0 are delayed taps of the same core in this functional
            // model.
            if i == 0 {
                netlist.add_output(format!("out_{i}"), core);
            } else {
                let lane = netlist.add_node(NodeKind::Delay(1), vec![core], w, format!("lane_{i}"));
                netlist.add_output(format!("out_{i}"), lane);
            }
        }
        Ok(GenResult { out_params, netlist })
    }
}

// ---------------------------------------------------------------------------
// XLS, Spiral, PipelineC (§6.2)
// ---------------------------------------------------------------------------

/// Model of Google XLS: generates partially-pipelined datapaths whose
/// initiation interval depends on the requested pipeline stages.
pub struct Xls;

impl Generator for Xls {
    fn tool_name(&self) -> &'static str {
        "xls"
    }

    fn components(&self) -> Vec<&'static str> {
        vec!["XlsMac"]
    }

    fn features(&self) -> Vec<GeneratorFeature> {
        vec![
            GeneratorFeature::InputDependentTiming,
            GeneratorFeature::InitiationIntervalGreaterThanOne,
        ]
    }

    fn generate(&self, req: &GenRequest) -> Result<GenResult, GenError> {
        if req.component != "XlsMac" {
            return Err(GenError::UnknownComponent {
                tool: "xls".into(),
                component: req.component.clone(),
            });
        }
        let w = req.param_or("W", 16) as u32;
        let stages = req.knob_or("stages", 2).max(1);
        let ii = req.knob_or("ii", 1).max(1);
        let mut out_params = BTreeMap::new();
        out_params.insert("L".to_string(), stages);
        out_params.insert("II".to_string(), ii);
        let mut n = Netlist::new(format!("xls_mac_{w}_s{stages}"));
        let a = n.add_input("a", w);
        let b = n.add_input("b", w);
        let acc = n.add_input("acc", w);
        let core = n.add_node(
            NodeKind::PipelinedOp { op: PipeOp::Mac, latency: stages as u32, ii: ii as u32 },
            vec![a, b, acc],
            w,
            "mac_core",
        );
        n.add_output("o", core);
        Ok(GenResult { out_params, netlist: n })
    }
}

/// Model of the Spiral FFT generator.
pub struct SpiralFft;

impl Generator for SpiralFft {
    fn tool_name(&self) -> &'static str {
        "spiral"
    }

    fn components(&self) -> Vec<&'static str> {
        vec!["SpiralFft"]
    }

    fn features(&self) -> Vec<GeneratorFeature> {
        vec![
            GeneratorFeature::InputDependentTiming,
            GeneratorFeature::OutputDependentTiming,
            GeneratorFeature::InitiationIntervalGreaterThanOne,
        ]
    }

    fn generate(&self, req: &GenRequest) -> Result<GenResult, GenError> {
        if req.component != "SpiralFft" {
            return Err(GenError::UnknownComponent {
                tool: "spiral".into(),
                component: req.component.clone(),
            });
        }
        let points = req.param_or("N", 64);
        if !points.is_power_of_two() || points < 4 {
            return Err(GenError::InvalidConfig {
                tool: "spiral".into(),
                message: format!("FFT size must be a power of two >= 4 (got {points})"),
            });
        }
        let w = req.param_or("W", 16) as u32;
        let streaming_width = req.knob_or("streaming_width", 2).max(1);
        let stages = 64 - (points - 1).leading_zeros() as u64; // log2
        let latency = stages * 3 + points / streaming_width;
        let ii = (points / streaming_width).max(1);
        let mut out_params = BTreeMap::new();
        out_params.insert("L".to_string(), latency);
        out_params.insert("II".to_string(), ii);
        let mut n = Netlist::new(format!("spiral_fft_{points}"));
        let re = n.add_input("re", w);
        let im = n.add_input("im", w);
        let core = n.add_node(
            NodeKind::PipelinedOp {
                op: PipeOp::Fft { points: points as u32 },
                latency: latency as u32,
                ii: ii as u32,
            },
            vec![re, im],
            w,
            "fft_core",
        );
        n.add_output("o", core);
        Ok(GenResult { out_params, netlist: n })
    }
}

/// Model of PipelineC: the user picks the exact latency as an input
/// parameter, so the interface needs no output parameters at all.
pub struct PipelineC;

impl Generator for PipelineC {
    fn tool_name(&self) -> &'static str {
        "pipelinec"
    }

    fn components(&self) -> Vec<&'static str> {
        vec!["PipeOp"]
    }

    fn features(&self) -> Vec<GeneratorFeature> {
        vec![GeneratorFeature::InputDependentTiming]
    }

    fn generate(&self, req: &GenRequest) -> Result<GenResult, GenError> {
        if req.component != "PipeOp" {
            return Err(GenError::UnknownComponent {
                tool: "pipelinec".into(),
                component: req.component.clone(),
            });
        }
        let w = req.param_or("W", 32) as u32;
        let l = req.param("L")?;
        let netlist = binary_core(&format!("pipelinec_op_{w}_{l}"), PipeOp::FAdd, w, l as u32, 1);
        Ok(GenResult { out_params: BTreeMap::new(), netlist })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FpgaFamily, GenGoals};

    #[test]
    fn flopoco_latency_tracks_frequency_and_width() {
        let slow = GenRequest::new("flopoco", "FPAdd")
            .with_param("W", 32)
            .with_goals(GenGoals { target_mhz: 100, family: FpgaFamily::Series7 });
        let fast = GenRequest::new("flopoco", "FPAdd")
            .with_param("W", 32)
            .with_goals(GenGoals { target_mhz: 280, family: FpgaFamily::Series7 });
        let l_slow = FloPoCo.generate(&slow).unwrap().out_param("L").unwrap();
        let l_fast = FloPoCo.generate(&fast).unwrap().out_param("L").unwrap();
        assert!(l_fast > l_slow, "deeper pipeline at higher frequency ({l_slow} vs {l_fast})");
        assert_eq!(l_slow, 1);
        assert_eq!(l_fast, 4);

        // Table 1's second configuration: adder latency 4, multiplier 2.
        let mul = GenRequest::new("flopoco", "FPMul")
            .with_param("W", 32)
            .with_goals(GenGoals { target_mhz: 280, family: FpgaFamily::Series7 });
        assert_eq!(FloPoCo.generate(&mul).unwrap().out_param("L").unwrap(), 2);

        // Wider operands deepen the pipeline too.
        let wide = GenRequest::new("flopoco", "FPAdd")
            .with_param("W", 64)
            .with_goals(GenGoals { target_mhz: 280, family: FpgaFamily::Series7 });
        assert!(FloPoCo.generate(&wide).unwrap().out_param("L").unwrap() > l_fast);

        // A faster family needs fewer stages.
        let ultra = GenRequest::new("flopoco", "FPAdd")
            .with_param("W", 32)
            .with_goals(GenGoals { target_mhz: 280, family: FpgaFamily::UltraScale });
        assert!(FloPoCo.generate(&ultra).unwrap().out_param("L").unwrap() <= l_fast);
    }

    #[test]
    fn flopoco_rejects_bad_width_and_unknown_component() {
        let bad = GenRequest::new("flopoco", "FPAdd").with_param("W", 0);
        assert!(matches!(FloPoCo.generate(&bad), Err(GenError::InvalidConfig { .. })));
        let unk = GenRequest::new("flopoco", "FSqrt").with_param("W", 32);
        assert!(matches!(FloPoCo.generate(&unk), Err(GenError::UnknownComponent { .. })));
        let missing = GenRequest::new("flopoco", "FPAdd");
        assert!(matches!(FloPoCo.generate(&missing), Err(GenError::MissingParam { .. })));
    }

    #[test]
    fn vivado_divider_selection_matches_fig9() {
        // LutMult: fixed 8-cycle latency, small widths only.
        let lut = GenRequest::new("vivado", "LutMult").with_param("W", 8);
        assert_eq!(VivadoIp.generate(&lut).unwrap().out_param("L"), Some(8));
        let too_wide = GenRequest::new("vivado", "LutMult").with_param("W", 16);
        assert!(VivadoIp.generate(&too_wide).is_err());

        // Radix-2: latency given by the Figure 9b formula.
        let rad2 = GenRequest::new("vivado", "Rad2")
            .with_param("W", 14)
            .with_param("II", 2)
            .with_param("Fr", 1);
        assert_eq!(VivadoIp.generate(&rad2).unwrap().out_param("L"), Some(19));
        let rad2_int = GenRequest::new("vivado", "Rad2").with_param("W", 14).with_param("II", 1);
        assert_eq!(VivadoIp.generate(&rad2_int).unwrap().out_param("L"), Some(16));

        // High radix: no closed form exposed, just an output parameter.
        let hr = GenRequest::new("vivado", "HighRad").with_param("W", 32);
        assert_eq!(VivadoIp.generate(&hr).unwrap().out_param("L"), Some(20));

        // The explicit-latency multiplier has no output parameters at all.
        let mult = GenRequest::new("vivado", "Mult").with_param("W", 16).with_param("L", 3);
        let r = VivadoIp.generate(&mult).unwrap();
        assert!(r.out_params.is_empty());
        assert!(r.netlist.validate().is_ok());
    }

    #[test]
    fn aetherling_parallelism_tradeoff() {
        for m in [1u64, 2, 4, 8, 16] {
            let req = GenRequest::new("aetherling", "AethConv")
                .with_param("W", 8)
                .with_knob("multipliers", m);
            let r = Aetherling.generate(&req).unwrap();
            assert_eq!(r.out_param("N"), Some(m));
            let ii = r.out_param("II").unwrap();
            let h = r.out_param("H").unwrap();
            assert!(ii >= h, "II must cover the hold time");
            assert_eq!(ii, (16 / m).max(1));
            assert!(r.netlist.validate().is_ok());
            assert_eq!(r.netlist.inputs.len(), m as usize);
            assert_eq!(r.netlist.outputs.len(), m as usize);
        }
        let bad = GenRequest::new("aetherling", "AethConv").with_knob("multipliers", 3);
        assert!(Aetherling.generate(&bad).is_err());
    }

    #[test]
    fn xls_and_spiral_and_pipelinec() {
        let x = GenRequest::new("xls", "XlsMac").with_param("W", 16).with_knob("ii", 2);
        let r = Xls.generate(&x).unwrap();
        assert_eq!(r.out_param("II"), Some(2));

        let s = GenRequest::new("spiral", "SpiralFft").with_param("N", 64).with_param("W", 16);
        let r = SpiralFft.generate(&s).unwrap();
        assert!(r.out_param("L").unwrap() > 6);
        assert!(SpiralFft
            .generate(&GenRequest::new("spiral", "SpiralFft").with_param("N", 60))
            .is_err());

        let p = GenRequest::new("pipelinec", "PipeOp").with_param("W", 32).with_param("L", 5);
        let r = PipelineC.generate(&p).unwrap();
        assert!(r.out_params.is_empty());
        assert!(r.netlist.validate().is_ok());
    }

    #[test]
    fn table3_feature_rows() {
        assert_eq!(PipelineC.features().len(), 1);
        assert_eq!(FloPoCo.features().len(), 2);
        assert_eq!(Xls.features().len(), 2);
        assert_eq!(SpiralFft.features().len(), 3);
        assert_eq!(Aetherling.features().len(), 4);
    }
}
