//! Core types shared by all generator models.

use lilac_ir::Netlist;
use std::collections::BTreeMap;
use std::fmt;

/// FPGA family a generator targets. Changing the family changes the timing
/// behaviour of generated modules (the performance-portability problem §2.1
/// describes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash, PartialOrd, Ord)]
pub enum FpgaFamily {
    /// A mid-range 7-series-like device (default).
    #[default]
    Series7,
    /// A faster UltraScale-like device: shallower pipelines reach the same
    /// frequency.
    UltraScale,
    /// A small low-cost device: deeper pipelines needed.
    LowCost,
}

impl FpgaFamily {
    /// Relative speed grade used by the latency models (1.0 = Series7).
    pub fn speed_factor(self) -> f64 {
        match self {
            FpgaFamily::Series7 => 1.0,
            FpgaFamily::UltraScale => 1.4,
            FpgaFamily::LowCost => 0.7,
        }
    }
}

/// Performance goals passed to a generator.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GenGoals {
    /// Target clock frequency in MHz.
    pub target_mhz: u32,
    /// Target FPGA family.
    pub family: FpgaFamily,
}

impl Default for GenGoals {
    fn default() -> Self {
        GenGoals { target_mhz: 100, family: FpgaFamily::Series7 }
    }
}

/// A request to generate one module.
#[derive(Clone, Debug)]
pub struct GenRequest {
    /// Tool name (`"flopoco"`, `"vivado"`, `"aetherling"`, `"xls"`,
    /// `"spiral"`, `"pipelinec"`).
    pub tool: String,
    /// Component name within the tool (e.g. `"FPAdd"`).
    pub component: String,
    /// Values of the component's Lilac input parameters.
    pub params: BTreeMap<String, u64>,
    /// Tool-specific configuration knobs that are *not* Lilac parameters
    /// (e.g. the number of multipliers given to Aetherling).
    pub knobs: BTreeMap<String, u64>,
    /// Performance goals.
    pub goals: GenGoals,
}

impl GenRequest {
    /// Creates a request with no parameters and default goals.
    pub fn new(tool: impl Into<String>, component: impl Into<String>) -> GenRequest {
        GenRequest {
            tool: tool.into(),
            component: component.into(),
            params: BTreeMap::new(),
            knobs: BTreeMap::new(),
            goals: GenGoals::default(),
        }
    }

    /// Adds a Lilac input parameter value.
    pub fn with_param(mut self, name: &str, value: u64) -> GenRequest {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Adds a tool-specific knob.
    pub fn with_knob(mut self, name: &str, value: u64) -> GenRequest {
        self.knobs.insert(name.to_string(), value);
        self
    }

    /// Sets the performance goals.
    pub fn with_goals(mut self, goals: GenGoals) -> GenRequest {
        self.goals = goals;
        self
    }

    /// Reads a parameter, falling back to `default`.
    pub fn param_or(&self, name: &str, default: u64) -> u64 {
        self.params.get(name).copied().unwrap_or(default)
    }

    /// Reads a knob, falling back to `default`.
    pub fn knob_or(&self, name: &str, default: u64) -> u64 {
        self.knobs.get(name).copied().unwrap_or(default)
    }

    /// Reads a required parameter.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::MissingParam`] if absent.
    pub fn param(&self, name: &str) -> Result<u64, GenError> {
        self.params.get(name).copied().ok_or_else(|| GenError::MissingParam {
            tool: self.tool.clone(),
            component: self.component.clone(),
            param: name.to_string(),
        })
    }
}

/// The outcome of running a generator: concrete bindings for the module's
/// output parameters plus a latency-sensitive implementation.
#[derive(Clone, Debug)]
pub struct GenResult {
    /// Concrete values for the module's output parameters (`#L`, `#II`, ...).
    pub out_params: BTreeMap<String, u64>,
    /// The generated implementation. Inputs appear in the same order as the
    /// component's data input ports (bundle ports are flattened to
    /// `name_0 .. name_{N-1}`), outputs likewise.
    pub netlist: Netlist,
}

impl GenResult {
    /// Convenience accessor for an output parameter.
    pub fn out_param(&self, name: &str) -> Option<u64> {
        self.out_params.get(name).copied()
    }
}

/// Errors produced by generator models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenError {
    /// The registry has no generator for the requested tool.
    UnknownTool(String),
    /// The tool does not provide the requested component.
    UnknownComponent {
        /// Tool name.
        tool: String,
        /// Component requested.
        component: String,
    },
    /// A required parameter was not supplied.
    MissingParam {
        /// Tool name.
        tool: String,
        /// Component name.
        component: String,
        /// Missing parameter.
        param: String,
    },
    /// A parameter or knob value is outside the supported range.
    InvalidConfig {
        /// Tool name.
        tool: String,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::UnknownTool(t) => write!(f, "unknown generator tool `{t}`"),
            GenError::UnknownComponent { tool, component } => {
                write!(f, "generator `{tool}` does not provide component `{component}`")
            }
            GenError::MissingParam { tool, component, param } => {
                write!(f, "generator `{tool}`/`{component}` requires parameter `{param}`")
            }
            GenError::InvalidConfig { tool, message } => {
                write!(f, "invalid configuration for generator `{tool}`: {message}")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// A generator model.
pub trait Generator: Send + Sync {
    /// Tool name used in `gen "<tool>"` declarations.
    fn tool_name(&self) -> &'static str;

    /// Components this tool can generate.
    fn components(&self) -> Vec<&'static str>;

    /// Lilac features this generator's interfaces require (Table 3 row).
    fn features(&self) -> Vec<lilac_core::GeneratorFeature>;

    /// Generates a module.
    ///
    /// # Errors
    ///
    /// Returns a [`GenError`] for unknown components or invalid
    /// configurations.
    fn generate(&self, request: &GenRequest) -> Result<GenResult, GenError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder() {
        let r = GenRequest::new("flopoco", "FPAdd")
            .with_param("W", 32)
            .with_knob("dsp", 1)
            .with_goals(GenGoals { target_mhz: 250, family: FpgaFamily::UltraScale });
        assert_eq!(r.param("W").unwrap(), 32);
        assert_eq!(r.param_or("X", 7), 7);
        assert_eq!(r.knob_or("dsp", 0), 1);
        assert!(matches!(r.param("missing"), Err(GenError::MissingParam { .. })));
        assert_eq!(r.goals.target_mhz, 250);
    }

    #[test]
    fn error_display() {
        let e = GenError::UnknownTool("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = GenError::UnknownComponent { tool: "flopoco".into(), component: "X".into() };
        assert!(e.to_string().contains("flopoco"));
        let e = GenError::InvalidConfig { tool: "xls".into(), message: "bad".into() };
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn family_speed_factors_ordered() {
        assert!(FpgaFamily::UltraScale.speed_factor() > FpgaFamily::Series7.speed_factor());
        assert!(FpgaFamily::LowCost.speed_factor() < FpgaFamily::Series7.speed_factor());
        assert_eq!(FpgaFamily::default(), FpgaFamily::Series7);
    }
}
