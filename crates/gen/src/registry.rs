//! The generator registry used by the elaborator.
//!
//! §5 of the paper: "Each generator provides a configuration file that
//! defines the modules it produces and the mechanism to extract bindings for
//! output parameters". Here that configuration is a [`GeneratorRegistry`]
//! mapping tool names to [`Generator`] implementations, plus default knobs
//! and goals the elaborator passes along with every request.

use crate::model::{GenError, GenGoals, GenRequest, GenResult, Generator};
use crate::tools::{Aetherling, FloPoCo, PipelineC, SpiralFft, VivadoIp, Xls};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A collection of generator models addressable by tool name.
#[derive(Clone)]
pub struct GeneratorRegistry {
    tools: BTreeMap<String, Arc<dyn Generator>>,
    /// Goals applied to every request that does not override them.
    pub default_goals: GenGoals,
    /// Knobs applied to every request, keyed by tool name.
    pub default_knobs: BTreeMap<String, BTreeMap<String, u64>>,
}

impl std::fmt::Debug for GeneratorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneratorRegistry")
            .field("tools", &self.tools.keys().collect::<Vec<_>>())
            .field("default_goals", &self.default_goals)
            .field("default_knobs", &self.default_knobs)
            .finish()
    }
}

impl GeneratorRegistry {
    /// An empty registry.
    pub fn new() -> GeneratorRegistry {
        GeneratorRegistry {
            tools: BTreeMap::new(),
            default_goals: GenGoals::default(),
            default_knobs: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with every built-in tool model.
    pub fn with_builtin_tools() -> GeneratorRegistry {
        let mut r = GeneratorRegistry::new();
        r.register(Arc::new(FloPoCo));
        r.register(Arc::new(VivadoIp));
        r.register(Arc::new(Aetherling));
        r.register(Arc::new(Xls));
        r.register(Arc::new(SpiralFft));
        r.register(Arc::new(PipelineC));
        r
    }

    /// Registers (or replaces) a tool.
    pub fn register(&mut self, tool: Arc<dyn Generator>) {
        self.tools.insert(tool.tool_name().to_string(), tool);
    }

    /// Looks up a tool by name.
    pub fn tool(&self, name: &str) -> Option<&Arc<dyn Generator>> {
        self.tools.get(name)
    }

    /// Names of all registered tools.
    pub fn tool_names(&self) -> Vec<&str> {
        self.tools.keys().map(std::string::String::as_str).collect()
    }

    /// Sets the default performance goals used when a request carries the
    /// stock defaults.
    pub fn set_default_goals(&mut self, goals: GenGoals) {
        self.default_goals = goals;
    }

    /// Sets a default knob value for a tool.
    pub fn set_default_knob(&mut self, tool: &str, knob: &str, value: u64) {
        self.default_knobs.entry(tool.to_string()).or_default().insert(knob.to_string(), value);
    }

    /// Generates a module, filling in default goals and knobs.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::UnknownTool`] for unregistered tools, or whatever
    /// error the tool model produces.
    pub fn generate(&self, request: &GenRequest) -> Result<GenResult, GenError> {
        let tool = self
            .tools
            .get(&request.tool)
            .ok_or_else(|| GenError::UnknownTool(request.tool.clone()))?;
        let mut req = request.clone();
        if req.goals == GenGoals::default() {
            req.goals = self.default_goals;
        }
        if let Some(knobs) = self.default_knobs.get(&request.tool) {
            for (k, v) in knobs {
                req.knobs.entry(k.clone()).or_insert(*v);
            }
        }
        tool.generate(&req)
    }
}

impl Default for GeneratorRegistry {
    fn default() -> Self {
        GeneratorRegistry::with_builtin_tools()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_all_tools() {
        let r = GeneratorRegistry::with_builtin_tools();
        let names = r.tool_names();
        for t in ["flopoco", "vivado", "aetherling", "xls", "spiral", "pipelinec"] {
            assert!(names.contains(&t), "missing tool {t}");
        }
        assert!(r.tool("flopoco").is_some());
        assert!(r.tool("nope").is_none());
    }

    #[test]
    fn unknown_tool_is_an_error() {
        let r = GeneratorRegistry::with_builtin_tools();
        let req = GenRequest::new("ghidra", "X");
        assert!(matches!(r.generate(&req), Err(GenError::UnknownTool(_))));
    }

    #[test]
    fn default_goals_and_knobs_apply() {
        let mut r = GeneratorRegistry::with_builtin_tools();
        r.set_default_goals(GenGoals { target_mhz: 280, ..GenGoals::default() });
        r.set_default_knob("aetherling", "multipliers", 8);

        // FloPoCo request with stock goals inherits the registry default.
        let req = GenRequest::new("flopoco", "FPAdd").with_param("W", 32);
        assert_eq!(r.generate(&req).unwrap().out_param("L"), Some(4));

        // Aetherling request without an explicit knob inherits 8 multipliers.
        let req = GenRequest::new("aetherling", "AethConv").with_param("W", 8);
        assert_eq!(r.generate(&req).unwrap().out_param("N"), Some(8));

        // An explicit knob still wins.
        let req = GenRequest::new("aetherling", "AethConv")
            .with_param("W", 8)
            .with_knob("multipliers", 2);
        assert_eq!(r.generate(&req).unwrap().out_param("N"), Some(2));
    }

    #[test]
    fn debug_format_lists_tools() {
        let r = GeneratorRegistry::with_builtin_tools();
        let s = format!("{r:?}");
        assert!(s.contains("flopoco"));
    }
}
