//! Facade crate re-exporting the Lilac reproduction workspace.
pub use lilac_ast as ast;
pub use lilac_core as core;
pub use lilac_designs as designs;
pub use lilac_elab as elab;
pub use lilac_gen as gen;
pub use lilac_ir as ir;
pub use lilac_li as li;
pub use lilac_opt as opt;
pub use lilac_service as service;
pub use lilac_sim as sim;
pub use lilac_solver as solver;
pub use lilac_synth as synth;
pub use lilac_util as util;
pub use lilac_vsim as vsim;
